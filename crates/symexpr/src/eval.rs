//! Concrete evaluation of symbolic expressions.
//!
//! Evaluation is used in three places:
//!
//! * by the taint tracker as a consistency cross-check (the shadow expression
//!   of a value must evaluate to the concrete value the VM computed),
//! * by the solver's sampling-based refutation of equivalence queries, and
//! * by patch validation when reasoning about what a transferred check would
//!   decide for a concrete input.

use crate::expr::{ExprRef, SymExpr};
use crate::op::{BinOp, CastKind, UnOp};
use crate::width::Width;
use std::collections::HashMap;

/// Provides concrete values for the tainted leaves of an expression.
pub trait ByteEnv {
    /// The value of the input byte at `offset`.
    fn byte(&self, offset: usize) -> u8;
}

impl ByteEnv for [u8] {
    fn byte(&self, offset: usize) -> u8 {
        self.get(offset).copied().unwrap_or(0)
    }
}

impl ByteEnv for Vec<u8> {
    fn byte(&self, offset: usize) -> u8 {
        self.as_slice().byte(offset)
    }
}

impl<F: Fn(usize) -> u8> ByteEnv for F {
    fn byte(&self, offset: usize) -> u8 {
        self(offset)
    }
}

/// Evaluates `expr` under the byte environment `env`.
///
/// The result is truncated to the expression's width.  Division by zero
/// evaluates to the all-ones value of the result width and remainder by zero
/// evaluates to the dividend, matching SMT-LIB bitvector semantics; the VM
/// traps divide-by-zero before such a value could ever be observed in a run.
///
/// Iterative (explicit work and value stacks): loop-carried donor
/// expressions hundreds of thousands of nodes deep evaluate without
/// overflowing the call stack, which matters because the solver evaluates
/// candidate checks under thousands of sampled environments.
pub fn eval<E: ByteEnv + ?Sized>(expr: &SymExpr, env: &E) -> u64 {
    // A node is visited once to schedule its children and once more
    // (`ready`) to combine their values; leaves are folded immediately.
    // `values` carries child results, pushed left-to-right.
    enum Item<'a> {
        Visit(&'a SymExpr),
        Combine(&'a SymExpr),
    }
    let mut stack: Vec<Item<'_>> = vec![Item::Visit(expr)];
    let mut values: Vec<u64> = Vec::new();
    while let Some(item) = stack.pop() {
        match item {
            Item::Visit(e) => match e {
                SymExpr::Const { width, value } => values.push(width.truncate(*value)),
                SymExpr::InputByte { offset } => values.push(env.byte(*offset) as u64),
                SymExpr::Field { width, offsets, .. } => {
                    // Fields are stored big-endian in the input (most
                    // significant offset first), as in the synthetic formats.
                    let mut v: u64 = 0;
                    for &off in offsets {
                        v = (v << 8) | env.byte(off) as u64;
                    }
                    values.push(width.truncate(v));
                }
                SymExpr::Unary { arg, .. } | SymExpr::Cast { arg, .. } => {
                    stack.push(Item::Combine(e));
                    stack.push(Item::Visit(arg));
                }
                SymExpr::Binary { lhs, rhs, .. } => {
                    stack.push(Item::Combine(e));
                    stack.push(Item::Visit(rhs));
                    stack.push(Item::Visit(lhs));
                }
            },
            Item::Combine(e) => {
                let combined = match e {
                    SymExpr::Unary { op, width, .. } => {
                        let a = values.pop().expect("operand evaluated");
                        match op {
                            UnOp::Neg => width.truncate((width.truncate(a)).wrapping_neg()),
                            UnOp::Not => width.truncate(!a),
                            UnOp::LogicalNot => u64::from(a == 0),
                        }
                    }
                    SymExpr::Binary { op, width, lhs, .. } => {
                        let b = values.pop().expect("rhs evaluated");
                        let a = values.pop().expect("lhs evaluated");
                        let operand_width = if op.is_comparison() {
                            lhs.width()
                        } else {
                            *width
                        };
                        width.truncate(eval_binop(
                            *op,
                            operand_width,
                            operand_width.truncate(a),
                            operand_width.truncate(b),
                        ))
                    }
                    SymExpr::Cast { kind, width, arg } => {
                        let a = values.pop().expect("operand evaluated");
                        let from = arg.width();
                        match kind {
                            CastKind::ZeroExt => width.truncate(from.truncate(a)),
                            CastKind::SignExt => width.truncate(from.sign_extend(a)),
                            CastKind::Truncate => width.truncate(a),
                        }
                    }
                    _ => unreachable!("leaves are folded on first visit"),
                };
                values.push(combined);
            }
        }
    }
    let result = values.pop().expect("root evaluated");
    debug_assert!(values.is_empty(), "value stack must drain exactly");
    expr.width().truncate(result)
}

/// Evaluates `expr` under many byte environments in one walk of the shared
/// expression DAG.
///
/// [`eval`] re-walks the whole tree per environment; for the solver's
/// sampling stage — hundreds of environments against one candidate pair —
/// that walk dominates, and interned expressions share large subterms that a
/// tree walk re-evaluates from scratch.  This variant visits each *distinct*
/// node exactly once (shared subterms are recognised by arena identity via
/// [`ExprRef::memo_key`]), carrying one value slot per environment, so the
/// cost is `O(dag_nodes × envs)` instead of `O(tree_nodes × envs)`.
///
/// Returns the root's value under each environment, in `envs` order, with
/// the same truncation and division-by-zero semantics as [`eval`].
pub fn eval_batch<E: ByteEnv>(expr: &ExprRef, envs: &[E]) -> Vec<u64> {
    enum Item {
        Visit(ExprRef),
        Combine(ExprRef),
    }
    let mut memo: HashMap<usize, Vec<u64>> = HashMap::new();
    let mut stack: Vec<Item> = vec![Item::Visit(*expr)];
    while let Some(item) = stack.pop() {
        match item {
            Item::Visit(e) => {
                if memo.contains_key(&e.memo_key()) {
                    continue;
                }
                match &*e {
                    SymExpr::Const { width, value } => {
                        memo.insert(e.memo_key(), vec![width.truncate(*value); envs.len()]);
                    }
                    SymExpr::InputByte { offset } => {
                        let values = envs.iter().map(|env| env.byte(*offset) as u64).collect();
                        memo.insert(e.memo_key(), values);
                    }
                    SymExpr::Field { width, offsets, .. } => {
                        let values = envs
                            .iter()
                            .map(|env| {
                                let mut v: u64 = 0;
                                for &off in offsets {
                                    v = (v << 8) | env.byte(off) as u64;
                                }
                                width.truncate(v)
                            })
                            .collect();
                        memo.insert(e.memo_key(), values);
                    }
                    SymExpr::Unary { arg, .. } | SymExpr::Cast { arg, .. } => {
                        stack.push(Item::Combine(e));
                        stack.push(Item::Visit(*arg));
                    }
                    SymExpr::Binary { lhs, rhs, .. } => {
                        stack.push(Item::Combine(e));
                        stack.push(Item::Visit(*rhs));
                        stack.push(Item::Visit(*lhs));
                    }
                }
            }
            Item::Combine(e) => {
                if memo.contains_key(&e.memo_key()) {
                    continue;
                }
                let combined: Vec<u64> = match &*e {
                    SymExpr::Unary { op, width, arg } => memo[&arg.memo_key()]
                        .iter()
                        .map(|&a| match op {
                            UnOp::Neg => width.truncate(width.truncate(a).wrapping_neg()),
                            UnOp::Not => width.truncate(!a),
                            UnOp::LogicalNot => u64::from(a == 0),
                        })
                        .collect(),
                    SymExpr::Binary {
                        op,
                        width,
                        lhs,
                        rhs,
                    } => {
                        let operand_width = if op.is_comparison() {
                            lhs.width()
                        } else {
                            *width
                        };
                        memo[&lhs.memo_key()]
                            .iter()
                            .zip(&memo[&rhs.memo_key()])
                            .map(|(&a, &b)| {
                                width.truncate(eval_binop(
                                    *op,
                                    operand_width,
                                    operand_width.truncate(a),
                                    operand_width.truncate(b),
                                ))
                            })
                            .collect()
                    }
                    SymExpr::Cast { kind, width, arg } => {
                        let from = arg.width();
                        memo[&arg.memo_key()]
                            .iter()
                            .map(|&a| match kind {
                                CastKind::ZeroExt => width.truncate(from.truncate(a)),
                                CastKind::SignExt => width.truncate(from.sign_extend(a)),
                                CastKind::Truncate => width.truncate(a),
                            })
                            .collect()
                    }
                    _ => unreachable!("leaves are folded on first visit"),
                };
                memo.insert(e.memo_key(), combined);
            }
        }
    }
    memo.remove(&expr.memo_key()).expect("root evaluated")
}

/// Applies a binary operator to two concrete operands of width `width`.
pub fn eval_binop(op: BinOp, width: Width, a: u64, b: u64) -> u64 {
    let bits = width.bits() as u64;
    let result = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::DivU => a.checked_div(b).unwrap_or_else(|| width.mask()),
        BinOp::DivS => {
            if b == 0 {
                width.mask()
            } else {
                let sa = width.sign_extend(a) as i64;
                let sb = width.sign_extend(b) as i64;
                sa.wrapping_div(sb) as u64
            }
        }
        BinOp::RemU => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        BinOp::RemS => {
            if b == 0 {
                a
            } else {
                let sa = width.sign_extend(a) as i64;
                let sb = width.sign_extend(b) as i64;
                sa.wrapping_rem(sb) as u64
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= bits {
                0
            } else {
                a << b
            }
        }
        BinOp::ShrU => {
            if b >= bits {
                0
            } else {
                a >> b
            }
        }
        BinOp::ShrS => {
            let sa = width.sign_extend(a) as i64;
            let shift = b.min(63);
            (sa >> shift) as u64
        }
        BinOp::Eq => (a == b) as u64,
        BinOp::Ne => (a != b) as u64,
        BinOp::LtU => (a < b) as u64,
        BinOp::LeU => (a <= b) as u64,
        BinOp::LtS => ((width.sign_extend(a) as i64) < (width.sign_extend(b) as i64)) as u64,
        BinOp::LeS => ((width.sign_extend(a) as i64) <= (width.sign_extend(b) as i64)) as u64,
    };
    width.truncate(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ExprBuild, SymExpr};

    fn env(bytes: &[u8]) -> Vec<u8> {
        bytes.to_vec()
    }

    #[test]
    fn evaluates_big_endian_field_reconstruction() {
        // (b0 << 8) | b1 over 16 bits.
        let hi = SymExpr::input_byte(0).zext(Width::W16);
        let lo = SymExpr::input_byte(1).zext(Width::W16);
        let field = hi
            .binop(BinOp::Shl, SymExpr::constant(Width::W16, 8))
            .binop(BinOp::Or, lo);
        let input = env(&[0x12, 0x34]);
        assert_eq!(eval(&field, &input), 0x1234);
    }

    #[test]
    fn field_leaf_evaluates_big_endian() {
        let f = SymExpr::field("/hdr/width", Width::W16, vec![2, 3]);
        let input = env(&[0, 0, 0xAB, 0xCD]);
        assert_eq!(eval(&f, &input), 0xABCD);
    }

    #[test]
    fn wrapping_multiplication_overflows_at_width() {
        let a = SymExpr::constant(Width::W32, 0x10000);
        let b = SymExpr::constant(Width::W32, 0x10000);
        let product = a.binop(BinOp::Mul, b);
        assert_eq!(eval(&product, &env(&[])), 0);
    }

    #[test]
    fn signed_comparison_uses_operand_width() {
        let a = SymExpr::constant(Width::W8, 0xFF); // -1 as i8
        let b = SymExpr::constant(Width::W8, 0x01);
        let cmp = a.binop(BinOp::LtS, b);
        assert_eq!(eval(&cmp, &env(&[])), 1);
        let cmp_u =
            SymExpr::constant(Width::W8, 0xFF).binop(BinOp::LtU, SymExpr::constant(Width::W8, 1));
        assert_eq!(eval(&cmp_u, &env(&[])), 0);
    }

    #[test]
    fn division_by_zero_is_all_ones() {
        let a = SymExpr::constant(Width::W16, 7);
        let z = SymExpr::constant(Width::W16, 0);
        assert_eq!(eval(&a.binop(BinOp::DivU, z), &env(&[])), 0xFFFF);
    }

    #[test]
    fn shift_by_width_or_more_is_zero() {
        let a = SymExpr::constant(Width::W32, 0xFFFF_FFFF);
        let s = SymExpr::constant(Width::W32, 32);
        assert_eq!(eval(&a.binop(BinOp::Shl, s), &env(&[])), 0);
        assert_eq!(eval(&a.binop(BinOp::ShrU, s), &env(&[])), 0);
    }

    #[test]
    fn sign_extension_then_truncation_round_trips_low_bits() {
        let b = SymExpr::input_byte(0).sext(Width::W32).truncate(Width::W8);
        assert_eq!(eval(&b, &env(&[0x80])), 0x80);
    }

    #[test]
    fn deep_chains_evaluate_without_stack_overflow() {
        // 100k nested adds would overflow a recursive evaluator.
        let mut e = SymExpr::input_byte(0).zext(Width::W64);
        for i in 0..100_000u64 {
            e = e.binop(BinOp::Add, SymExpr::constant(Width::W64, (i % 7) + 1));
        }
        // Σ ((i % 7) + 1) over 100k terms: 14285 full cycles summing 28 each,
        // plus the 5-term tail 1+2+3+4+5, on top of the input byte.
        let expected = 3 + 14_285 * 28 + 15;
        assert_eq!(eval(&e, &env(&[3])), expected);
    }

    #[test]
    fn batch_evaluation_matches_eval_per_environment() {
        // A DAG with a heavily shared subterm and every operator class:
        // shared = (b0 * b1) + b2; root mixes casts, comparisons, unary ops
        // and division over two uses of `shared`.
        let b0 = SymExpr::input_byte(0).zext(Width::W32);
        let b1 = SymExpr::input_byte(1).sext(Width::W32);
        let b2 = SymExpr::input_byte(2).zext(Width::W32);
        let shared = b0.binop(BinOp::Mul, b1).binop(BinOp::Add, b2);
        let lhs = shared.binop(BinOp::DivS, SymExpr::constant(Width::W32, 3));
        let rhs = shared
            .unop(UnOp::Not)
            .binop(BinOp::ShrU, SymExpr::constant(Width::W32, 2));
        let root = lhs
            .binop(BinOp::LtS, rhs)
            .zext(Width::W64)
            .binop(BinOp::Add, shared.truncate(Width::W8).zext(Width::W64));

        let envs: Vec<Vec<u8>> = [
            [0u8, 0, 0],
            [0xFF, 0xFF, 0xFF],
            [0x80, 0x01, 0x7F],
            [17, 3, 250],
            [1, 0x80, 0],
        ]
        .iter()
        .map(|e| e.to_vec())
        .collect();
        let batch = eval_batch(&root, &envs);
        assert_eq!(batch.len(), envs.len());
        for (i, env) in envs.iter().enumerate() {
            assert_eq!(batch[i], eval(&root, env), "environment {i}");
        }
    }

    #[test]
    fn batch_evaluation_handles_fields_and_empty_batches() {
        let f = SymExpr::field("/hdr/width", Width::W16, vec![0, 1]);
        let halved = f.binop(BinOp::DivU, SymExpr::constant(Width::W16, 2));
        let envs: Vec<Vec<u8>> = vec![vec![0x12, 0x34], vec![0xFF, 0xFF]];
        assert_eq!(eval_batch(&halved, &envs), vec![0x1234 / 2, 0xFFFF / 2]);
        assert!(eval_batch(&halved, &Vec::<Vec<u8>>::new()).is_empty());
    }

    #[test]
    fn logical_not_produces_zero_one() {
        let z = SymExpr::constant(Width::W32, 0).unop(UnOp::LogicalNot);
        let nz = SymExpr::constant(Width::W32, 17).unop(UnOp::LogicalNot);
        assert_eq!(eval(&z, &env(&[])), 1);
        assert_eq!(eval(&nz, &env(&[])), 0);
    }
}

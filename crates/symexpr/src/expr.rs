//! The symbolic expression tree.

use crate::op::{BinOp, CastKind, UnOp};
use crate::width::Width;
use std::sync::Arc;

/// A shared reference to a [`SymExpr`].
///
/// Expressions are built during instrumented execution where the same
/// sub-expression (e.g. a parsed header field) flows into many downstream
/// values, so structural sharing keeps shadow state compact.
pub type ExprRef = Arc<SymExpr>;

/// A symbolic bitvector expression over input bytes and constants.
///
/// This is Code Phage's application-independent representation: it records how
/// an application computes a value from the bytes of its input, independent of
/// the application's own variable names and data structures (paper Section 3.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SymExpr {
    /// A constant of the given width.
    Const {
        /// Width of the constant.
        width: Width,
        /// Value, truncated to `width`.
        value: u64,
    },
    /// A single tainted input byte (width 8).
    InputByte {
        /// Byte offset within the input.
        offset: usize,
    },
    /// A named input field, as resolved by the input-format dissector
    /// (the paper's `HachField(16, '/start_frame/content/height')` leaves).
    ///
    /// Fields are introduced by folding byte-level reads once a format
    /// descriptor is available; the raw byte offsets are retained so that
    /// equivalence checking can still reason at byte granularity.
    Field {
        /// Hierarchical field path, e.g. `/sof/height`.
        path: String,
        /// Width of the field value.
        width: Width,
        /// Input byte offsets covered by the field (most significant first
        /// for big-endian fields).
        offsets: Vec<usize>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Result width.
        width: Width,
        /// Operand.
        arg: ExprRef,
    },
    /// A binary operation.  Both operands have the same width as the result,
    /// except shifts whose right operand is interpreted as a shift amount.
    Binary {
        /// Operator.
        op: BinOp,
        /// Result width.
        width: Width,
        /// Left operand.
        lhs: ExprRef,
        /// Right operand.
        rhs: ExprRef,
    },
    /// A width-changing cast.
    Cast {
        /// Kind of cast.
        kind: CastKind,
        /// Result width.
        width: Width,
        /// Operand.
        arg: ExprRef,
    },
}

impl SymExpr {
    /// Creates a constant expression.
    pub fn constant(width: Width, value: u64) -> ExprRef {
        Arc::new(SymExpr::Const {
            width,
            value: width.truncate(value),
        })
    }

    /// Creates an input-byte leaf.
    pub fn input_byte(offset: usize) -> ExprRef {
        Arc::new(SymExpr::InputByte { offset })
    }

    /// Creates a named-field leaf.
    pub fn field(path: impl Into<String>, width: Width, offsets: Vec<usize>) -> ExprRef {
        Arc::new(SymExpr::Field {
            path: path.into(),
            width,
            offsets,
        })
    }

    /// The width of the value this expression denotes.
    pub fn width(&self) -> Width {
        match self {
            SymExpr::Const { width, .. } => *width,
            SymExpr::InputByte { .. } => Width::W8,
            SymExpr::Field { width, .. } => *width,
            SymExpr::Unary { width, .. } => *width,
            SymExpr::Binary { width, .. } => *width,
            SymExpr::Cast { width, .. } => *width,
        }
    }

    /// Returns the constant value if this expression is a constant.
    pub fn as_const(&self) -> Option<u64> {
        match self {
            SymExpr::Const { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// Whether the expression contains any tainted leaf (input byte or field).
    pub fn is_tainted(&self) -> bool {
        match self {
            SymExpr::Const { .. } => false,
            SymExpr::InputByte { .. } | SymExpr::Field { .. } => true,
            SymExpr::Unary { arg, .. } | SymExpr::Cast { arg, .. } => arg.is_tainted(),
            SymExpr::Binary { lhs, rhs, .. } => lhs.is_tainted() || rhs.is_tainted(),
        }
    }

    /// Number of nodes in the tree (used to bound solver work).
    pub fn node_count(&self) -> usize {
        match self {
            SymExpr::Const { .. } | SymExpr::InputByte { .. } | SymExpr::Field { .. } => 1,
            SymExpr::Unary { arg, .. } | SymExpr::Cast { arg, .. } => 1 + arg.node_count(),
            SymExpr::Binary { lhs, rhs, .. } => 1 + lhs.node_count() + rhs.node_count(),
        }
    }
}

/// Fluent construction helpers on shared expression references.
pub trait ExprBuild {
    /// Builds a binary operation with this expression as the left operand.
    /// The result width is the width of the left operand.
    fn binop(&self, op: BinOp, rhs: ExprRef) -> ExprRef;
    /// Builds a binary operation with an explicit result width.
    fn binop_w(&self, op: BinOp, width: Width, rhs: ExprRef) -> ExprRef;
    /// Builds a unary operation.
    fn unop(&self, op: UnOp) -> ExprRef;
    /// Zero-extends (or returns unchanged if already at the target width).
    fn zext(&self, width: Width) -> ExprRef;
    /// Sign-extends (or returns unchanged if already at the target width).
    fn sext(&self, width: Width) -> ExprRef;
    /// Truncates (or returns unchanged if already at the target width).
    fn truncate(&self, width: Width) -> ExprRef;
}

impl ExprBuild for ExprRef {
    fn binop(&self, op: BinOp, rhs: ExprRef) -> ExprRef {
        let width = if op.is_comparison() {
            Width::W8
        } else {
            self.width()
        };
        Arc::new(SymExpr::Binary {
            op,
            width,
            lhs: self.clone(),
            rhs,
        })
    }

    fn binop_w(&self, op: BinOp, width: Width, rhs: ExprRef) -> ExprRef {
        Arc::new(SymExpr::Binary {
            op,
            width,
            lhs: self.clone(),
            rhs,
        })
    }

    fn unop(&self, op: UnOp) -> ExprRef {
        let width = if op == UnOp::LogicalNot {
            Width::W8
        } else {
            self.width()
        };
        Arc::new(SymExpr::Unary {
            op,
            width,
            arg: self.clone(),
        })
    }

    fn zext(&self, width: Width) -> ExprRef {
        if self.width() == width {
            return self.clone();
        }
        Arc::new(SymExpr::Cast {
            kind: CastKind::ZeroExt,
            width,
            arg: self.clone(),
        })
    }

    fn sext(&self, width: Width) -> ExprRef {
        if self.width() == width {
            return self.clone();
        }
        Arc::new(SymExpr::Cast {
            kind: CastKind::SignExt,
            width,
            arg: self.clone(),
        })
    }

    fn truncate(&self, width: Width) -> ExprRef {
        if self.width() == width {
            return self.clone();
        }
        Arc::new(SymExpr::Cast {
            kind: CastKind::Truncate,
            width,
            arg: self.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_truncated_to_width() {
        let c = SymExpr::constant(Width::W8, 0x1FF);
        assert_eq!(c.as_const(), Some(0xFF));
    }

    #[test]
    fn comparison_results_are_byte_wide() {
        let a = SymExpr::constant(Width::W32, 1);
        let b = SymExpr::constant(Width::W32, 2);
        let cmp = a.binop(BinOp::LtU, b);
        assert_eq!(cmp.width(), Width::W8);
    }

    #[test]
    fn zext_to_same_width_is_identity() {
        let b = SymExpr::input_byte(0);
        let same = b.zext(Width::W8);
        assert_eq!(b, same);
    }

    #[test]
    fn taint_propagates_through_operators() {
        let c = SymExpr::constant(Width::W32, 4);
        assert!(!c.is_tainted());
        let t = SymExpr::input_byte(9).zext(Width::W32);
        assert!(t.is_tainted());
        assert!(t.binop(BinOp::Add, c.clone()).is_tainted());
        assert!(!c
            .binop(BinOp::Add, SymExpr::constant(Width::W32, 1))
            .is_tainted());
    }

    #[test]
    fn node_count_counts_every_node() {
        let e = SymExpr::input_byte(0)
            .zext(Width::W16)
            .binop(BinOp::Add, SymExpr::constant(Width::W16, 3));
        assert_eq!(e.node_count(), 4);
    }

    #[test]
    fn field_leaf_retains_offsets() {
        let f = SymExpr::field("/sof/height", Width::W16, vec![5, 6]);
        match f.as_ref() {
            SymExpr::Field { path, offsets, .. } => {
                assert_eq!(path, "/sof/height");
                assert_eq!(offsets, &vec![5, 6]);
            }
            _ => panic!("expected field"),
        }
    }
}

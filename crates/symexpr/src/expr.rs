//! The symbolic expression DAG.

use crate::arena::{ExprArena, ExprId, Meta, Node};
use crate::op::{BinOp, CastKind, UnOp};
use crate::support::SupportSet;
use crate::width::Width;
use std::fmt;
use std::ops::Deref;

/// A shared, hash-consed reference to a [`SymExpr`] node.
///
/// Expressions are built during instrumented execution where the same
/// sub-expression (e.g. a parsed header field) flows into many downstream
/// values.  Every node is interned in the thread's [`ExprArena`], so an
/// `ExprRef` is a `Copy` handle: cloning a shadow costs nothing, equality is
/// a pointer compare (which, within one thread, *is* structural equality),
/// and the per-node metadata the arena memoises at intern time —
/// [`width`](Self::width), [`is_tainted`](Self::is_tainted),
/// [`node_count`](Self::node_count), [`op_count`](Self::op_count) and the
/// input [`support`](Self::support) bitset — is an O(1) field read instead of
/// an O(tree) walk.
///
/// `ExprRef` dereferences to [`SymExpr`], so consumers pattern-match nodes
/// exactly as they would with an `Arc<SymExpr>`.
///
/// # Ownership rule
///
/// A handle is only valid **on the thread that interned it, during the
/// arena epoch that interned it**.  Moving a handle across threads or
/// holding it past an [`ArenaEpoch`](crate::ArenaEpoch) drop /
/// [`ExprArena::reset`] is a contract violation: the node may be freed
/// (release builds) and the dense [`ExprId`] would silently index a
/// different arena.  Debug builds stamp every node with its `(arena,
/// epoch)` identity and panic on any dereference of a stale or foreign
/// handle; release builds elide the check.  Data that must outlive an epoch
/// or cross a thread boundary (pipeline outcomes, witnesses, reports) must
/// be rendered down to plain values first.
#[derive(Clone, Copy)]
pub struct ExprRef {
    pub(crate) node: &'static Node,
}

impl ExprRef {
    /// Interns `expr` and returns its canonical handle
    /// (equivalent to [`ExprArena::intern`]).
    pub fn new(expr: SymExpr) -> ExprRef {
        ExprArena::intern(expr)
    }

    /// Debug-build enforcement of the ownership rule: panics when the node's
    /// `(arena, epoch)` stamp is not the calling thread's current identity.
    /// Release builds compile this to nothing.
    #[inline]
    fn check_live(&self) {
        #[cfg(debug_assertions)]
        {
            let current = crate::arena::current_identity();
            let stamp = self.node.stamp;
            assert!(
                stamp == current,
                "stale ExprRef: node was interned by arena {} epoch {}, but this thread's arena \
                 is {} epoch {} — an ExprRef must not outlive its ArenaEpoch or cross threads",
                stamp.arena,
                stamp.epoch,
                current.arena,
                current.epoch,
            );
        }
    }

    /// The stable id of this node within the thread's arena.
    pub fn id(&self) -> ExprId {
        self.check_live();
        self.node.id
    }

    /// The width of the value this expression denotes (memoised).
    pub fn width(&self) -> Width {
        self.check_live();
        self.node.meta.width
    }

    /// Returns the constant value if this expression is a constant.
    pub fn as_const(&self) -> Option<u64> {
        self.check_live();
        self.node.expr.as_const()
    }

    /// Whether the expression contains any tainted leaf (memoised).
    pub fn is_tainted(&self) -> bool {
        self.check_live();
        self.node.meta.tainted
    }

    /// Number of nodes in the expression tree, counting shared subtrees once
    /// per occurrence (memoised; saturates at `usize::MAX`).
    pub fn node_count(&self) -> usize {
        self.check_live();
        usize::try_from(self.node.meta.node_count).unwrap_or(usize::MAX)
    }

    /// Number of operator (unary, binary, cast) nodes in the expression tree
    /// (memoised; saturates at `usize::MAX`).  This is the paper's Figure 8
    /// "Check Size" metric.
    pub fn op_count(&self) -> usize {
        self.check_live();
        usize::try_from(self.node.meta.op_count).unwrap_or(usize::MAX)
    }

    /// The input byte offsets the expression depends on (memoised).
    pub fn support(&self) -> &SupportSet {
        self.check_live();
        &self.node.meta.support
    }

    pub(crate) fn meta(&self) -> &Meta {
        self.check_live();
        &self.node.meta
    }

    /// A key for this node that is unique *within the current epoch*: its
    /// node address.
    ///
    /// Within one thread and epoch this is 1:1 with [`id`](Self::id).
    /// Downstream passes (the solver's bit-blaster, check translation, DAG
    /// walks) key their **per-call** memo tables by it — such tables never
    /// outlive an epoch, so address reuse across resets cannot alias.  The
    /// long-lived thread-local memos (simplify, decompose) instead key by
    /// `(arena identity, ExprId)` and clear when the epoch rolls.
    pub fn memo_key(&self) -> usize {
        self.check_live();
        self.node as *const Node as usize
    }
}

impl Deref for ExprRef {
    type Target = SymExpr;

    fn deref(&self) -> &SymExpr {
        self.check_live();
        &self.node.expr
    }
}

impl AsRef<SymExpr> for ExprRef {
    fn as_ref(&self) -> &SymExpr {
        self.check_live();
        &self.node.expr
    }
}

impl PartialEq for ExprRef {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.node, other.node)
    }
}

impl Eq for ExprRef {}

impl std::hash::Hash for ExprRef {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.node as *const Node as usize).hash(state);
    }
}

impl fmt::Debug for ExprRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.check_live();
        fmt::Debug::fmt(&self.node.expr, f)
    }
}

impl fmt::Display for ExprRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.check_live();
        fmt::Display::fmt(&self.node.expr, f)
    }
}

/// A symbolic bitvector expression over input bytes and constants.
///
/// This is Code Phage's application-independent representation: it records how
/// an application computes a value from the bytes of its input, independent of
/// the application's own variable names and data structures (paper Section 3.2).
///
/// Child links are [`ExprRef`] handles into the thread's [`ExprArena`], so
/// the "tree" is really a deduplicated DAG; structural equality of two nodes
/// reduces to field equality plus child-pointer equality, which is what lets
/// the arena intern in O(1) per node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SymExpr {
    /// A constant of the given width.
    Const {
        /// Width of the constant.
        width: Width,
        /// Value, truncated to `width`.
        value: u64,
    },
    /// A single tainted input byte (width 8).
    InputByte {
        /// Byte offset within the input.
        offset: usize,
    },
    /// A named input field, as resolved by the input-format dissector
    /// (the paper's `HachField(16, '/start_frame/content/height')` leaves).
    ///
    /// Fields are introduced by folding byte-level reads once a format
    /// descriptor is available; the raw byte offsets are retained so that
    /// equivalence checking can still reason at byte granularity.
    Field {
        /// Hierarchical field path, e.g. `/sof/height`.
        path: String,
        /// Width of the field value.
        width: Width,
        /// Input byte offsets covered by the field (most significant first
        /// for big-endian fields).
        offsets: Vec<usize>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Result width.
        width: Width,
        /// Operand.
        arg: ExprRef,
    },
    /// A binary operation.  Both operands have the same width as the result,
    /// except shifts whose right operand is interpreted as a shift amount.
    Binary {
        /// Operator.
        op: BinOp,
        /// Result width.
        width: Width,
        /// Left operand.
        lhs: ExprRef,
        /// Right operand.
        rhs: ExprRef,
    },
    /// A width-changing cast.
    Cast {
        /// Kind of cast.
        kind: CastKind,
        /// Result width.
        width: Width,
        /// Operand.
        arg: ExprRef,
    },
}

impl SymExpr {
    /// Creates (interns) a constant expression.
    pub fn constant(width: Width, value: u64) -> ExprRef {
        ExprArena::intern(SymExpr::Const { width, value })
    }

    /// Creates (interns) an input-byte leaf.
    pub fn input_byte(offset: usize) -> ExprRef {
        ExprArena::intern(SymExpr::InputByte { offset })
    }

    /// Creates (interns) a named-field leaf.
    pub fn field(path: impl Into<String>, width: Width, offsets: Vec<usize>) -> ExprRef {
        ExprArena::intern(SymExpr::Field {
            path: path.into(),
            width,
            offsets,
        })
    }

    /// Creates (interns) a unary operation node.
    pub fn unary(op: UnOp, width: Width, arg: ExprRef) -> ExprRef {
        ExprArena::intern(SymExpr::Unary { op, width, arg })
    }

    /// Creates (interns) a binary operation node.
    pub fn binary(op: BinOp, width: Width, lhs: ExprRef, rhs: ExprRef) -> ExprRef {
        ExprArena::intern(SymExpr::Binary {
            op,
            width,
            lhs,
            rhs,
        })
    }

    /// Creates (interns) a cast node.
    pub fn cast(kind: CastKind, width: Width, arg: ExprRef) -> ExprRef {
        ExprArena::intern(SymExpr::Cast { kind, width, arg })
    }

    /// The width of the value this expression denotes.
    pub fn width(&self) -> Width {
        match self {
            SymExpr::Const { width, .. } => *width,
            SymExpr::InputByte { .. } => Width::W8,
            SymExpr::Field { width, .. } => *width,
            SymExpr::Unary { width, .. } => *width,
            SymExpr::Binary { width, .. } => *width,
            SymExpr::Cast { width, .. } => *width,
        }
    }

    /// Returns the constant value if this expression is a constant.
    pub fn as_const(&self) -> Option<u64> {
        match self {
            SymExpr::Const { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// Whether the expression contains any tainted leaf (input byte or field).
    ///
    /// One level of match plus the children's memoised flag — O(1).
    pub fn is_tainted(&self) -> bool {
        match self {
            SymExpr::Const { .. } => false,
            SymExpr::InputByte { .. } | SymExpr::Field { .. } => true,
            SymExpr::Unary { arg, .. } | SymExpr::Cast { arg, .. } => arg.is_tainted(),
            SymExpr::Binary { lhs, rhs, .. } => lhs.is_tainted() || rhs.is_tainted(),
        }
    }

    /// Number of nodes in the tree (used to bound solver work).
    ///
    /// One level of match plus the children's memoised count — O(1).
    pub fn node_count(&self) -> usize {
        match self {
            SymExpr::Const { .. } | SymExpr::InputByte { .. } | SymExpr::Field { .. } => 1,
            SymExpr::Unary { arg, .. } | SymExpr::Cast { arg, .. } => {
                arg.node_count().saturating_add(1)
            }
            SymExpr::Binary { lhs, rhs, .. } => lhs
                .node_count()
                .saturating_add(rhs.node_count())
                .saturating_add(1),
        }
    }
}

/// Fluent construction helpers on shared expression references.
pub trait ExprBuild {
    /// Builds a binary operation with this expression as the left operand.
    /// The result width is the width of the left operand.
    fn binop(&self, op: BinOp, rhs: ExprRef) -> ExprRef;
    /// Builds a binary operation with an explicit result width.
    fn binop_w(&self, op: BinOp, width: Width, rhs: ExprRef) -> ExprRef;
    /// Builds a unary operation.
    fn unop(&self, op: UnOp) -> ExprRef;
    /// Zero-extends (or returns unchanged if already at the target width).
    fn zext(&self, width: Width) -> ExprRef;
    /// Sign-extends (or returns unchanged if already at the target width).
    fn sext(&self, width: Width) -> ExprRef;
    /// Truncates (or returns unchanged if already at the target width).
    fn truncate(&self, width: Width) -> ExprRef;
}

impl ExprBuild for ExprRef {
    fn binop(&self, op: BinOp, rhs: ExprRef) -> ExprRef {
        let width = if op.is_comparison() {
            Width::W8
        } else {
            self.width()
        };
        SymExpr::binary(op, width, *self, rhs)
    }

    fn binop_w(&self, op: BinOp, width: Width, rhs: ExprRef) -> ExprRef {
        SymExpr::binary(op, width, *self, rhs)
    }

    fn unop(&self, op: UnOp) -> ExprRef {
        let width = if op == UnOp::LogicalNot {
            Width::W8
        } else {
            self.width()
        };
        SymExpr::unary(op, width, *self)
    }

    fn zext(&self, width: Width) -> ExprRef {
        if self.width() == width {
            return *self;
        }
        SymExpr::cast(CastKind::ZeroExt, width, *self)
    }

    fn sext(&self, width: Width) -> ExprRef {
        if self.width() == width {
            return *self;
        }
        SymExpr::cast(CastKind::SignExt, width, *self)
    }

    fn truncate(&self, width: Width) -> ExprRef {
        if self.width() == width {
            return *self;
        }
        SymExpr::cast(CastKind::Truncate, width, *self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_truncated_to_width() {
        let c = SymExpr::constant(Width::W8, 0x1FF);
        assert_eq!(c.as_const(), Some(0xFF));
    }

    #[test]
    fn comparison_results_are_byte_wide() {
        let a = SymExpr::constant(Width::W32, 1);
        let b = SymExpr::constant(Width::W32, 2);
        let cmp = a.binop(BinOp::LtU, b);
        assert_eq!(cmp.width(), Width::W8);
    }

    #[test]
    fn zext_to_same_width_is_identity() {
        let b = SymExpr::input_byte(0);
        let same = b.zext(Width::W8);
        assert_eq!(b, same);
    }

    #[test]
    fn taint_propagates_through_operators() {
        let c = SymExpr::constant(Width::W32, 4);
        assert!(!c.is_tainted());
        let t = SymExpr::input_byte(9).zext(Width::W32);
        assert!(t.is_tainted());
        assert!(t.binop(BinOp::Add, c).is_tainted());
        assert!(!c
            .binop(BinOp::Add, SymExpr::constant(Width::W32, 1))
            .is_tainted());
    }

    #[test]
    fn node_count_counts_every_node() {
        let e = SymExpr::input_byte(0)
            .zext(Width::W16)
            .binop(BinOp::Add, SymExpr::constant(Width::W16, 3));
        assert_eq!(e.node_count(), 4);
    }

    #[test]
    fn field_leaf_retains_offsets() {
        let f = SymExpr::field("/sof/height", Width::W16, vec![5, 6]);
        match f.as_ref() {
            SymExpr::Field { path, offsets, .. } => {
                assert_eq!(path, "/sof/height");
                assert_eq!(offsets, &vec![5, 6]);
            }
            _ => panic!("expected field"),
        }
    }

    #[test]
    fn handles_are_copy_and_pointer_equal() {
        let a = SymExpr::input_byte(42);
        let b = a; // Copy, not clone.
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        let rebuilt = SymExpr::input_byte(42);
        assert_eq!(a, rebuilt);
    }
}

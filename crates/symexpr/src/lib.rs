//! # cp-symexpr
//!
//! Application-independent symbolic expressions for Code Phage.
//!
//! During the instrumented execution of a donor or recipient, every value that
//! depends on tainted input bytes is shadowed by a [`SymExpr`]: a bitvector
//! expression whose leaves are input bytes (or named input fields) and
//! constants.  This is the representation the paper calls the
//! *application-independent form* of a check (Section 3.2).
//!
//! Expressions are **hash-consed**: every node is interned in the thread's
//! [`ExprArena`], so [`ExprRef`] is a `Copy` handle with a stable [`ExprId`],
//! structural equality is a pointer compare, and the metadata hot paths need —
//! width, taintedness, operator count, input-support bitset — is memoised per
//! node at intern time (see [`arena`] for the design and its invariants).
//! Passes that walk expressions ([`rewrite::simplify`], [`bytes::decompose`])
//! memoise their results per interned node, so subtrees shared across
//! thousands of recorded branch conditions are processed once per thread and
//! arena epoch.  Arenas are **epoch-scoped**: an [`ArenaEpoch`] guard (or
//! [`ExprArena::reset`]) reclaims every node, hash-cons entry and dependent
//! memo when a unit of work ends — see [`arena`] for the ownership rule.
//!
//! The crate also implements the bit-manipulation rewrite rules of Figure 5 of
//! the paper (and their generalisation to 8/16/32/64-bit operands) in
//! [`rewrite`], concrete evaluation in [`eval`], and the operation-count metric
//! used for the "Check Size" column of Figure 8 in [`count_ops`].
//!
//! ```
//! use cp_symexpr::{SymExpr, Width, BinOp, ExprBuild};
//!
//! // (byte0 << 8) | byte1 — a big-endian 16-bit field read.
//! let hi = SymExpr::input_byte(0).zext(Width::W16);
//! let lo = SymExpr::input_byte(1).zext(Width::W16);
//! let field = hi.binop(BinOp::Shl, SymExpr::constant(Width::W16, 8))
//!     .binop(BinOp::Or, lo);
//! // Extracting the low byte back out simplifies to the original byte.
//! let low = field.binop(BinOp::And, SymExpr::constant(Width::W16, 0xFF));
//! let simplified = cp_symexpr::rewrite::simplify(&low);
//! assert_eq!(cp_symexpr::count_ops(&simplified), 1); // just the zero-extension
//! ```

pub mod arena;
pub mod bytes;
pub mod display;
pub mod eval;
pub mod expr;
pub mod op;
pub mod overflow;
pub mod rewrite;
pub mod support;
pub mod walk;
pub mod width;

pub use arena::{ArenaEpoch, ExprArena, ExprId};
pub use expr::{ExprBuild, ExprRef, SymExpr};
pub use op::{BinOp, CastKind, UnOp};
pub use overflow::{overflow_conditions, overflow_goal};
pub use support::SupportSet;
pub use width::Width;

/// Counts operator nodes (unary, binary and cast nodes) in an expression.
///
/// This is the metric reported in the "Check Size" column of Figure 8 of the
/// paper: the number of operations in the excised application-independent
/// representation and in the translated check.  Served from the arena's
/// memoised per-node metadata — O(1).
pub fn count_ops(expr: &ExprRef) -> usize {
    expr.op_count()
}

/// Collects the set of input byte offsets an expression depends on.
///
/// Code Phage uses this both to filter branches that are not affected by the
/// relevant bytes (Section 3.2) and as the "disjoint support" fast path that
/// avoids solver invocations during translation (Section 3.3).
///
/// The set itself is memoised on the node ([`ExprRef::support`] is the O(1)
/// borrow); this helper materialises it as a `BTreeSet` for callers that want
/// an owned ordered collection.
pub fn input_support(expr: &ExprRef) -> std::collections::BTreeSet<usize> {
    expr.support().iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_ops_counts_operator_nodes() {
        let a = SymExpr::input_byte(0);
        let b = SymExpr::input_byte(1);
        let sum = a.binop(BinOp::Add, b);
        assert_eq!(count_ops(&sum), 1);
        let widened = sum.zext(Width::W32);
        assert_eq!(count_ops(&widened), 2);
    }

    #[test]
    fn support_collects_all_leaves() {
        let e = SymExpr::input_byte(3)
            .zext(Width::W32)
            .binop(BinOp::Mul, SymExpr::input_byte(7).zext(Width::W32));
        let support = input_support(&e);
        assert_eq!(support.into_iter().collect::<Vec<_>>(), vec![3, 7]);
    }

    #[test]
    fn support_of_constant_is_empty() {
        assert!(input_support(&SymExpr::constant(Width::W32, 5)).is_empty());
    }

    #[test]
    fn memoized_support_matches_btree_view() {
        let e = SymExpr::field("/hdr/len", Width::W16, vec![4, 5])
            .zext(Width::W64)
            .binop(BinOp::Add, SymExpr::input_byte(9).zext(Width::W64));
        assert_eq!(
            input_support(&e).into_iter().collect::<Vec<_>>(),
            e.support().iter().collect::<Vec<_>>()
        );
        assert!(e.support().contains(4));
        assert!(!e.support().contains(6));
    }
}

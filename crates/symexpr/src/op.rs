//! Operators appearing in symbolic expressions.
//!
//! The operator vocabulary matches what the Code Phage instrumentation
//! observes in the donor binary: integer arithmetic, bitwise logic, shifts,
//! comparisons (which produce a 0/1 value, as in the underlying machine code)
//! and the width-changing casts the paper writes as `ToSize` / `Shrink`.

use std::fmt;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnOp {
    /// Two's-complement negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Logical negation: `1` if the operand is zero, `0` otherwise.
    LogicalNot,
}

impl UnOp {
    /// Human-readable mnemonic used in the paper-style rendering.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "Neg",
            UnOp::Not => "BvNot",
            UnOp::LogicalNot => "LNot",
        }
    }

    /// C-like operator token for patch generation.
    pub fn c_token(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "~",
            UnOp::LogicalNot => "!",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (division by zero evaluates to all-ones, as most
    /// solvers define it; the VM traps before this can be observed).
    DivU,
    /// Signed division.
    DivS,
    /// Unsigned remainder.
    RemU,
    /// Signed remainder.
    RemS,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift.
    Shl,
    /// Logical (unsigned) right shift.
    ShrU,
    /// Arithmetic (signed) right shift.
    ShrS,
    /// Equality comparison (result 0/1).
    Eq,
    /// Inequality comparison (result 0/1).
    Ne,
    /// Unsigned less-than (result 0/1).
    LtU,
    /// Unsigned less-or-equal (result 0/1).
    LeU,
    /// Signed less-than (result 0/1).
    LtS,
    /// Signed less-or-equal (result 0/1).
    LeS,
}

impl BinOp {
    /// Whether the operator is commutative (used for canonical ordering).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Eq | BinOp::Ne
        )
    }

    /// Whether the operator produces a 0/1 comparison result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::LtU | BinOp::LeU | BinOp::LtS | BinOp::LeS
        )
    }

    /// Human-readable mnemonic used in the paper-style rendering.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "Add",
            BinOp::Sub => "Sub",
            BinOp::Mul => "Mul",
            BinOp::DivU => "Div",
            BinOp::DivS => "SDiv",
            BinOp::RemU => "Rem",
            BinOp::RemS => "SRem",
            BinOp::And => "BvAnd",
            BinOp::Or => "BvOr",
            BinOp::Xor => "BvXor",
            BinOp::Shl => "Shl",
            BinOp::ShrU => "UShr",
            BinOp::ShrS => "SShr",
            BinOp::Eq => "Equal",
            BinOp::Ne => "NotEqual",
            BinOp::LtU => "ULess",
            BinOp::LeU => "ULessEqual",
            BinOp::LtS => "SLess",
            BinOp::LeS => "SLessEqual",
        }
    }

    /// C-like operator token for patch generation.  Signedness of division,
    /// shifts and comparisons is conveyed by casts emitted around operands.
    pub fn c_token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::DivU | BinOp::DivS => "/",
            BinOp::RemU | BinOp::RemS => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::ShrU | BinOp::ShrS => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::LtU | BinOp::LtS => "<",
            BinOp::LeU | BinOp::LeS => "<=",
        }
    }
}

/// Width-changing casts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CastKind {
    /// Zero extension to a wider type (the paper's `ToSize` on unsigned data).
    ZeroExt,
    /// Sign extension to a wider type.
    SignExt,
    /// Truncation to a narrower type (the paper's `Shrink`).
    Truncate,
}

impl CastKind {
    /// Human-readable mnemonic used in the paper-style rendering.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastKind::ZeroExt => "ToSize",
            CastKind::SignExt => "SignExtend",
            CastKind::Truncate => "Shrink",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for CastKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutativity_classification() {
        assert!(BinOp::Add.is_commutative());
        assert!(BinOp::Mul.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Shl.is_commutative());
        assert!(!BinOp::LeU.is_commutative());
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::LeU.is_comparison());
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn mnemonics_follow_paper_vocabulary() {
        assert_eq!(BinOp::LeU.mnemonic(), "ULessEqual");
        assert_eq!(BinOp::ShrS.mnemonic(), "SShr");
        assert_eq!(CastKind::Truncate.mnemonic(), "Shrink");
        assert_eq!(CastKind::ZeroExt.mnemonic(), "ToSize");
    }
}

//! Overflow goal conditions: symbolic predicates for "this expression's
//! arithmetic wraps".
//!
//! The VM's DIODE detector sets a sticky flag on every `Add`/`Sub`/`Mul`
//! whose result wraps at its width and traps when a flagged value reaches an
//! allocation size.  Goal-directed discovery needs the *symbolic* analogue:
//! given the recorded size expression of an allocation, a boolean expression
//! over the input bytes that is non-zero exactly when some arithmetic node in
//! the size computation wraps — the condition a satisfiability query can
//! solve for an error input.
//!
//! Each condition mirrors the VM's `arith_wrapped` semantics through
//! [`eval`](crate::eval::eval)'s width rules:
//!
//! * `Add` below 64 bits — both operands zero-extended to 64 bits, their sum
//!   compared against the operand width's mask (a 64-bit add of two narrower
//!   values cannot itself wrap);
//! * `Add` at 64 bits — the wrapped sum is unsigned-less-than one operand;
//! * `Sub` — unsigned `lhs < rhs` at the operand width;
//! * `Mul` at or below 32 bits — the product of the zero-extended operands
//!   compared against the mask (a 64-bit product of 32-bit values is exact);
//! * `Mul` at 64 bits — the division check `lhs != 0 && product / lhs != rhs`
//!   (the bit-blaster abandons symbolic division, so these goals fall back to
//!   the solver's sampling and exhaustive stages).
//!
//! Comparison nodes start a clean value in the VM (their 0/1 result carries
//! no overflow flag), so the walk does not descend into them: arithmetic
//! feeding only a comparison cannot poison an allocation size.

use crate::expr::{ExprBuild, ExprRef, SymExpr};
use crate::op::BinOp;
use crate::width::Width;
use std::collections::HashSet;

/// Re-widths `e` to `w` the way [`eval`](crate::eval::eval) treats a binary
/// operand: values are truncated to the operand width before the operation,
/// and narrower values zero-extend losslessly.
fn fit(e: &ExprRef, w: Width) -> ExprRef {
    if e.width() > w {
        e.truncate(w)
    } else {
        e.zext(w)
    }
}

/// The wrap predicate for one `Add`/`Sub`/`Mul` node, if expressible.
///
/// `node` must be the interned `Binary { op, width, lhs, rhs }` itself (the
/// 64-bit forms reuse it as the already-wrapped result).
fn node_wraps(
    node: &ExprRef,
    op: BinOp,
    w: Width,
    lhs: &ExprRef,
    rhs: &ExprRef,
) -> Option<ExprRef> {
    let mask = SymExpr::constant(Width::W64, w.mask());
    match op {
        BinOp::Add if w < Width::W64 => {
            let sum = fit(lhs, w)
                .zext(Width::W64)
                .binop(BinOp::Add, fit(rhs, w).zext(Width::W64));
            Some(mask.binop(BinOp::LtU, sum))
        }
        // At 64 bits the widened sum is unavailable; a wrapped sum is
        // strictly below either operand.
        BinOp::Add => Some(node.binop(BinOp::LtU, fit(lhs, Width::W64))),
        BinOp::Sub => Some(fit(lhs, w).binop(BinOp::LtU, fit(rhs, w))),
        BinOp::Mul if w <= Width::W32 => {
            let product = fit(lhs, w)
                .zext(Width::W64)
                .binop(BinOp::Mul, fit(rhs, w).zext(Width::W64));
            Some(mask.binop(BinOp::LtU, product))
        }
        BinOp::Mul => {
            // product / lhs != rhs detects a wrapped 64-bit product; guard
            // the division so lhs == 0 (which cannot wrap) never divides.
            let a = fit(lhs, Width::W64);
            let b = fit(rhs, Width::W64);
            let nonzero = a.binop(BinOp::Ne, SymExpr::constant(Width::W64, 0));
            let mismatch = node.binop(BinOp::DivU, a).binop(BinOp::Ne, b);
            Some(nonzero.binop(BinOp::And, mismatch))
        }
        _ => None,
    }
}

/// The wrap predicates of every `Add`/`Sub`/`Mul` node whose overflow flag
/// would reach the value of `expr`, in deterministic first-visit order.
///
/// Shared subtrees contribute one condition; subtrees feeding only comparison
/// nodes contribute none (comparisons reset the VM's sticky flag).
pub fn overflow_conditions(expr: &ExprRef) -> Vec<ExprRef> {
    let mut out = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    let mut stack = vec![*expr];
    while let Some(e) = stack.pop() {
        if !seen.insert(e.memo_key()) {
            continue;
        }
        match e.as_ref() {
            SymExpr::Binary {
                op,
                width,
                lhs,
                rhs,
            } => {
                if op.is_comparison() {
                    continue; // comparison results start clean
                }
                if let Some(cond) = node_wraps(&e, *op, *width, lhs, rhs) {
                    out.push(cond);
                }
                // Right first so the left subtree pops (and reports) first.
                stack.push(*rhs);
                stack.push(*lhs);
            }
            SymExpr::Unary { arg, .. } | SymExpr::Cast { arg, .. } => stack.push(*arg),
            SymExpr::Const { .. } | SymExpr::InputByte { .. } | SymExpr::Field { .. } => {}
        }
    }
    out
}

/// The overall overflow goal for `expr`: the disjunction of
/// [`overflow_conditions`], or `None` when the expression contains no
/// wrapping-capable arithmetic (a constant-size or copied-through
/// allocation cannot be driven to overflow).
pub fn overflow_goal(expr: &ExprRef) -> Option<ExprRef> {
    let conds = overflow_conditions(expr);
    let mut iter = conds.into_iter();
    let first = iter.next()?;
    Some(iter.fold(first, |acc, c| acc.binop(BinOp::Or, c)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;

    fn be16(hi: usize, lo: usize) -> ExprRef {
        SymExpr::input_byte(hi)
            .zext(Width::W16)
            .binop(BinOp::Shl, SymExpr::constant(Width::W16, 8))
            .binop(BinOp::Or, SymExpr::input_byte(lo).zext(Width::W16))
    }

    /// The goal must agree with concrete wrap detection: evaluate the goal
    /// under an environment and compare with directly checking the node
    /// arithmetic.
    fn wraps_concretely(op: BinOp, w: Width, a: u64, b: u64) -> bool {
        let mask = w.mask() as u128;
        let (a, b) = (w.truncate(a), w.truncate(b));
        match op {
            BinOp::Add => (a as u128) + (b as u128) > mask,
            BinOp::Sub => b > a,
            BinOp::Mul => (a as u128) * (b as u128) > mask,
            _ => false,
        }
    }

    #[test]
    fn goal_matches_concrete_wrap_for_mul32() {
        let w = be16(0, 1).zext(Width::W32);
        let h = be16(2, 3).zext(Width::W32);
        let product = w.binop(BinOp::Mul, h);
        let goal = overflow_goal(&product).expect("mul is wrapping-capable");
        for env in [
            &[0x00u8, 0x10, 0x00, 0x10][..], // 16 * 16: no wrap
            &[0xFF, 0xFF, 0xFF, 0xFF][..],   // 65535^2: no wrap at 32 bits
            &[0x00, 0x00, 0xFF, 0xFF][..],   // 0 * anything: no wrap
        ] {
            let a = eval(&w, env);
            let b = eval(&h, env);
            assert_eq!(
                eval(&goal, env) != 0,
                wraps_concretely(BinOp::Mul, Width::W32, a, b),
                "env {env:?}"
            );
        }
    }

    #[test]
    fn chained_mul_goal_covers_every_node() {
        // (w * h) * d at 32 bits: two wrap sites.
        let w = be16(0, 1).zext(Width::W32);
        let h = be16(2, 3).zext(Width::W32);
        let d = be16(4, 5).zext(Width::W32);
        let size = w.binop(BinOp::Mul, h).binop(BinOp::Mul, d);
        assert_eq!(overflow_conditions(&size).len(), 2);
        let goal = overflow_goal(&size).unwrap();
        // 0xFFFF * 0xFFFF fits in 32 bits, but * 4 wraps only via the outer
        // product.
        let env: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x04];
        assert_ne!(eval(&goal, env), 0);
        let benign: &[u8] = &[0x00, 0x10, 0x00, 0x10, 0x00, 0x04];
        assert_eq!(eval(&goal, benign), 0);
    }

    #[test]
    fn add_goal_at_64_bits_uses_the_carry_trick() {
        let a = SymExpr::field("/a", Width::W64, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let b = SymExpr::field("/b", Width::W64, vec![8, 9, 10, 11, 12, 13, 14, 15]);
        let sum = a.binop(BinOp::Add, b);
        let goal = overflow_goal(&sum).unwrap();
        let wrap: Vec<u8> = vec![0xFF; 16];
        assert_ne!(eval(&goal, &wrap), 0);
        let clean: Vec<u8> = vec![0x01; 16];
        assert_eq!(eval(&goal, &clean), 0);
    }

    #[test]
    fn sub_goal_detects_borrow() {
        let a = SymExpr::input_byte(0).zext(Width::W32);
        let b = SymExpr::input_byte(1).zext(Width::W32);
        let diff = a.binop(BinOp::Sub, b);
        let goal = overflow_goal(&diff).unwrap();
        assert_ne!(eval(&goal, &[1u8, 2][..]), 0);
        assert_eq!(eval(&goal, &[2u8, 1][..]), 0);
        assert_eq!(eval(&goal, &[5u8, 5][..]), 0);
    }

    #[test]
    fn mul64_goal_uses_the_division_check() {
        let a = SymExpr::field("/a", Width::W64, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let b = SymExpr::input_byte(8).zext(Width::W64);
        let product = a.binop(BinOp::Mul, b);
        let goal = overflow_goal(&product).unwrap();
        let wrap: Vec<u8> = vec![0xFF; 9];
        assert_ne!(eval(&goal, &wrap), 0);
        let clean: Vec<u8> = vec![0, 0, 0, 0, 0, 0, 0, 2, 3];
        assert_eq!(eval(&goal, &clean), 0);
    }

    #[test]
    fn constant_and_copied_sizes_have_no_goal() {
        assert!(overflow_goal(&SymExpr::constant(Width::W64, 64)).is_none());
        let copied = SymExpr::input_byte(0).zext(Width::W64);
        assert!(overflow_goal(&copied).is_none());
    }

    #[test]
    fn arithmetic_under_a_comparison_is_ignored() {
        // (a * b > 4) as a size: the comparison's 0/1 result is clean, so
        // the multiply cannot poison the allocation.
        let a = SymExpr::input_byte(0).zext(Width::W32);
        let b = SymExpr::input_byte(1).zext(Width::W32);
        let cmp = a
            .binop(BinOp::Mul, b)
            .binop(BinOp::LtU, SymExpr::constant(Width::W32, 4));
        assert!(overflow_goal(&cmp).is_none());
    }

    #[test]
    fn shared_nodes_contribute_one_condition() {
        let a = SymExpr::input_byte(0).zext(Width::W32);
        let b = SymExpr::input_byte(1).zext(Width::W32);
        let product = a.binop(BinOp::Mul, b);
        // product appears twice; only one wrap condition for it (plus the or).
        let doubled = product.binop(BinOp::Or, product);
        assert_eq!(overflow_conditions(&doubled).len(), 1);
    }
}

//! Expression simplification.
//!
//! As the symbolic expressions are recorded during the instrumented execution
//! of the donor, Code Phage applies optimisations that reduce the size of the
//! generated expressions (paper Section 3.2, Figure 5).  The most important of
//! these simplify bit-manipulation operations — shifts, masks and ors that
//! extract, align or combine operands — because such operations occur
//! constantly when applications read multi-byte fields out of their inputs.
//!
//! [`simplify`] performs a bottom-up pass applying
//!
//! * constant folding,
//! * algebraic identities (`x + 0`, `x | 0`, `x & ~0`, `x * 1`, `x << 0`, …),
//! * cast fusion (`Shrink(ToSize(x))`, nested truncations, …), and
//! * the generalised Figure 5 byte-structure rules via [`crate::bytes`].
//!
//! The pass is iterative (an explicit work stack, so 100k-node loop-carried
//! expressions cannot overflow the call stack) and memoised per interned
//! node: a hash-consed subtree shared by thousands of recorded branches is
//! simplified exactly once per thread, and repeated [`simplify`] calls on the
//! same expression are O(1) cache hits.
//!
//! Simplification never changes the value of an expression; the property tests
//! at the bottom of this module and the deterministic randomized tests in
//! `tests/arena_invariants.rs` check this against random byte environments.

use crate::bytes::{decompose, recompose};
use crate::eval::eval_binop;
use crate::expr::{ExprRef, SymExpr};
use crate::op::{BinOp, CastKind, UnOp};
use crate::width::Width;
use std::cell::RefCell;
use std::collections::HashMap;

/// Options controlling which rule families are applied.
///
/// The benchmark harness uses this to reproduce the paper's observation that
/// the bit-manipulation rules "significantly reduce the size and complexity of
/// the extracted symbolic expressions".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimplifyOptions {
    /// Apply constant folding and algebraic identities.
    pub algebraic: bool,
    /// Apply the Figure 5 byte-structure rules.
    pub byte_rules: bool,
}

impl Default for SimplifyOptions {
    fn default() -> Self {
        SimplifyOptions {
            algebraic: true,
            byte_rules: true,
        }
    }
}

impl SimplifyOptions {
    /// All rule families enabled.
    pub fn full() -> Self {
        Self::default()
    }

    /// Disable the Figure 5 byte rules (ablation configuration).
    pub fn without_byte_rules() -> Self {
        SimplifyOptions {
            algebraic: true,
            byte_rules: false,
        }
    }

    /// Disable everything (identity transformation).
    pub fn none() -> Self {
        SimplifyOptions {
            algebraic: false,
            byte_rules: false,
        }
    }

    /// Dense memo-table key for the option combination.
    fn encode(self) -> u8 {
        (self.algebraic as u8) | ((self.byte_rules as u8) << 1)
    }
}

/// The simplification memo for one arena generation: entries are only
/// consulted while `stamp` matches the thread's current arena identity, and
/// the whole table drops the first time it is touched after an epoch roll.
/// Keying by the dense `ExprId` (valid per epoch) instead of the node
/// address means a reset can never alias — a recycled address or id from a
/// later epoch finds an empty table, not a stale entry.
#[derive(Default)]
struct Memo {
    stamp: crate::arena::memo::Stamp,
    map: HashMap<(u32, u8), ExprRef>,
}

thread_local! {
    /// Per-thread memo: (node id, option set) → simplified node, scoped to
    /// one arena epoch.  Nodes are immutable and simplification is
    /// deterministic, so entries never invalidate *within* an epoch.
    static MEMO: RefCell<Memo> = RefCell::new(Memo::default());
}

fn memo_get(expr: ExprRef, opts: u8) -> Option<ExprRef> {
    MEMO.with(|memo| {
        let memo = &mut *memo.borrow_mut();
        crate::arena::memo::roll(&mut memo.stamp, &mut memo.map);
        memo.map.get(&(expr.id().index(), opts)).copied()
    })
}

fn memo_put(expr: ExprRef, opts: u8, result: ExprRef) {
    MEMO.with(|memo| {
        let memo = &mut *memo.borrow_mut();
        crate::arena::memo::roll(&mut memo.stamp, &mut memo.map);
        memo.map.insert((expr.id().index(), opts), result);
    });
}

/// Number of memoised simplification results on this thread for the current
/// arena epoch (all option combinations).
pub fn memo_len() -> usize {
    MEMO.with(|memo| {
        let memo = &mut *memo.borrow_mut();
        crate::arena::memo::roll(&mut memo.stamp, &mut memo.map);
        memo.map.len()
    })
}

/// Simplifies an expression with the default (full) rule set.
pub fn simplify(expr: &ExprRef) -> ExprRef {
    simplify_with(expr, SimplifyOptions::default())
}

/// Simplifies an expression with an explicit rule selection.
///
/// Bottom-up over the expression DAG with an explicit work stack; every
/// distinct node is combined at most once per thread and option set.
pub fn simplify_with(expr: &ExprRef, options: SimplifyOptions) -> ExprRef {
    let opts = options.encode();
    if let Some(hit) = memo_get(*expr, opts) {
        return hit;
    }
    // (node, children_ready) — a node is pushed once to schedule its children
    // and once more to combine their simplified forms.
    let mut stack: Vec<(ExprRef, bool)> = vec![(*expr, false)];
    while let Some((e, ready)) = stack.pop() {
        if memo_get(e, opts).is_some() {
            continue;
        }
        if !ready {
            match &*e {
                // Leaves are already canonical: they simplify to themselves
                // (the byte rules cannot shrink a single leaf).
                SymExpr::Const { .. } | SymExpr::InputByte { .. } | SymExpr::Field { .. } => {
                    memo_put(e, opts, e);
                }
                SymExpr::Unary { arg, .. } | SymExpr::Cast { arg, .. } => {
                    stack.push((e, true));
                    stack.push((*arg, false));
                }
                SymExpr::Binary { lhs, rhs, .. } => {
                    stack.push((e, true));
                    stack.push((*lhs, false));
                    stack.push((*rhs, false));
                }
            }
        } else {
            let child = |c: ExprRef| memo_get(c, opts).expect("children combined before parent");
            let rebuilt = match &*e {
                SymExpr::Unary { op, width, arg } => {
                    simplify_unary(*op, *width, child(*arg), options)
                }
                SymExpr::Binary {
                    op,
                    width,
                    lhs,
                    rhs,
                } => simplify_binary(*op, *width, child(*lhs), child(*rhs), options),
                SymExpr::Cast { kind, width, arg } => {
                    simplify_cast(*kind, *width, child(*arg), options)
                }
                _ => unreachable!("leaves are memoised on first visit"),
            };
            let result = if options.byte_rules {
                apply_byte_rules(rebuilt)
            } else {
                rebuilt
            };
            memo_put(e, opts, result);
        }
    }
    memo_get(*expr, opts).expect("root combined")
}

fn apply_byte_rules(expr: ExprRef) -> ExprRef {
    if let Some(bytes) = decompose(&expr) {
        let rebuilt = recompose(&bytes, expr.width());
        if rebuilt.op_count() < expr.op_count() {
            return rebuilt;
        }
    }
    expr
}

fn simplify_unary(op: UnOp, width: Width, arg: ExprRef, options: SimplifyOptions) -> ExprRef {
    if !options.algebraic {
        return SymExpr::unary(op, width, arg);
    }
    if let Some(v) = arg.as_const() {
        let value = match op {
            UnOp::Neg => width.truncate(v.wrapping_neg()),
            UnOp::Not => width.truncate(!v),
            UnOp::LogicalNot => (v == 0) as u64,
        };
        return SymExpr::constant(width, value);
    }
    // Double negation / complement elimination.
    if let SymExpr::Unary {
        op: inner_op,
        arg: inner,
        ..
    } = arg.as_ref()
    {
        if *inner_op == op && matches!(op, UnOp::Neg | UnOp::Not) {
            return *inner;
        }
        // LogicalNot(LogicalNot(x)) is the 0/1 normalisation of x; keep it when
        // x is already a comparison (whose value is known to be 0/1).
        if op == UnOp::LogicalNot && *inner_op == UnOp::LogicalNot {
            if let SymExpr::Binary { op: cmp, .. } = inner.as_ref() {
                if cmp.is_comparison() {
                    return *inner;
                }
            }
        }
    }
    SymExpr::unary(op, width, arg)
}

fn simplify_cast(kind: CastKind, width: Width, arg: ExprRef, options: SimplifyOptions) -> ExprRef {
    if !options.algebraic {
        if arg.width() == width {
            return arg;
        }
        return SymExpr::cast(kind, width, arg);
    }
    let from = arg.width();
    if from == width {
        return arg;
    }
    // A narrowing "extension" keeps only the low `width` bits (see
    // `eval`), i.e. it *is* a truncation; canonicalise so the fusion rules
    // below only ever see genuinely widening ZeroExt/SignExt nodes.
    let kind = if width < from {
        CastKind::Truncate
    } else {
        kind
    };
    if let Some(v) = arg.as_const() {
        let value = match kind {
            CastKind::ZeroExt => from.truncate(v),
            CastKind::SignExt => width.truncate(from.sign_extend(v)),
            CastKind::Truncate => width.truncate(v),
        };
        return SymExpr::constant(width, value);
    }
    // Cast fusion.  Recursion only follows already-simplified cast chains, so
    // its depth is bounded by the (short) fused chain, not the tree.
    if let SymExpr::Cast {
        kind: inner_kind,
        arg: inner,
        ..
    } = arg.as_ref()
    {
        match (inner_kind, kind) {
            // ZeroExt(ZeroExt(x)) => ZeroExt(x)
            (CastKind::ZeroExt, CastKind::ZeroExt) => {
                return simplify_cast(CastKind::ZeroExt, width, *inner, options);
            }
            // Truncate(ZeroExt(x)) where the truncation lands back at or below
            // the original width is either x itself or a narrower truncation.
            (CastKind::ZeroExt, CastKind::Truncate) => {
                if width == inner.width() {
                    return *inner;
                }
                if width < inner.width() {
                    return simplify_cast(CastKind::Truncate, width, *inner, options);
                }
                return simplify_cast(CastKind::ZeroExt, width, *inner, options);
            }
            // Truncate(Truncate(x)) => Truncate(x) — but only when the outer
            // truncation is at least as narrow as the inner one.  A *widening*
            // outer "truncate" (which zero-extends, see `eval`) must keep the
            // inner node: fusing Shrink(32, Shrink(8, x₁₆)) to Shrink(32, x₁₆)
            // would resurrect the masked-off high byte.
            (CastKind::Truncate, CastKind::Truncate) if width <= arg.width() => {
                return simplify_cast(CastKind::Truncate, width, *inner, options);
            }
            _ => {}
        }
    }
    SymExpr::cast(kind, width, arg)
}

fn simplify_binary(
    op: BinOp,
    width: Width,
    lhs: ExprRef,
    rhs: ExprRef,
    options: SimplifyOptions,
) -> ExprRef {
    if !options.algebraic {
        return SymExpr::binary(op, width, lhs, rhs);
    }
    // Constant folding.
    if let (Some(a), Some(b)) = (lhs.as_const(), rhs.as_const()) {
        let operand_width = if op.is_comparison() {
            lhs.width()
        } else {
            width
        };
        let value = eval_binop(
            op,
            operand_width,
            operand_width.truncate(a),
            operand_width.truncate(b),
        );
        return SymExpr::constant(width, value);
    }
    // Canonicalise constants to the right for commutative operators so the
    // identity rules below only need to look at `rhs`.
    let (lhs, rhs) = if op.is_commutative() && lhs.as_const().is_some() && rhs.as_const().is_none()
    {
        (rhs, lhs)
    } else {
        (lhs, rhs)
    };
    if let Some(c) = rhs.as_const() {
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor if c == 0 => return lhs,
            BinOp::Shl | BinOp::ShrU | BinOp::ShrS if c == 0 => return lhs,
            BinOp::Mul if c == 1 => return lhs,
            BinOp::DivU if c == 1 => return lhs,
            BinOp::Mul if c == 0 => return SymExpr::constant(width, 0),
            BinOp::And if c == 0 => return SymExpr::constant(width, 0),
            BinOp::And if c == width.mask() => return lhs,
            BinOp::Or if c == width.mask() => return SymExpr::constant(width, width.mask()),
            _ => {}
        }
    }
    // x - x => 0, x ^ x => 0, x & x => x, x | x => x.  Handle equality is
    // structural equality thanks to hash-consing.
    if lhs == rhs {
        match op {
            BinOp::Sub | BinOp::Xor => return SymExpr::constant(width, 0),
            BinOp::And | BinOp::Or => return lhs,
            BinOp::Eq | BinOp::LeU | BinOp::LeS => return SymExpr::constant(Width::W8, 1),
            BinOp::Ne | BinOp::LtU | BinOp::LtS => return SymExpr::constant(Width::W8, 0),
            _ => {}
        }
    }
    SymExpr::binary(op, width, lhs, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_ops;
    use crate::eval::eval;
    use crate::expr::ExprBuild;
    use crate::input_support;

    fn be16(hi: usize, lo: usize) -> ExprRef {
        SymExpr::input_byte(hi)
            .zext(Width::W16)
            .binop(BinOp::Shl, SymExpr::constant(Width::W16, 8))
            .binop(BinOp::Or, SymExpr::input_byte(lo).zext(Width::W16))
    }

    #[test]
    fn constant_folding_collapses_pure_constant_trees() {
        let e = SymExpr::constant(Width::W32, 6)
            .binop(BinOp::Mul, SymExpr::constant(Width::W32, 7))
            .binop(BinOp::Add, SymExpr::constant(Width::W32, 0));
        assert_eq!(simplify(&e).as_const(), Some(42));
    }

    #[test]
    fn identity_rules_remove_neutral_elements() {
        let x = SymExpr::input_byte(0).zext(Width::W32);
        let e = x
            .binop(BinOp::Add, SymExpr::constant(Width::W32, 0))
            .binop(BinOp::Mul, SymExpr::constant(Width::W32, 1))
            .binop(BinOp::Or, SymExpr::constant(Width::W32, 0));
        assert_eq!(simplify(&e), x);
    }

    #[test]
    fn byte_rules_disentangle_low_byte_extraction() {
        // Extracting the low byte of a big-endian 16-bit read should reduce to
        // a zero extension of the single input byte (Fig. 5 rule 1).
        let e = be16(10, 11).binop(BinOp::And, SymExpr::constant(Width::W16, 0xFF));
        let s = simplify(&e);
        assert_eq!(count_ops(&s), 1);
        assert_eq!(input_support(&s).into_iter().collect::<Vec<_>>(), vec![11]);
    }

    #[test]
    fn byte_rules_disentangle_high_byte_extraction() {
        let e = be16(10, 11)
            .binop(BinOp::And, SymExpr::constant(Width::W16, 0xFF00))
            .binop(BinOp::ShrU, SymExpr::constant(Width::W16, 8));
        let s = simplify(&e);
        assert_eq!(count_ops(&s), 1);
        assert_eq!(input_support(&s).into_iter().collect::<Vec<_>>(), vec![10]);
    }

    #[test]
    fn ablation_without_byte_rules_keeps_shifts() {
        let e = be16(10, 11).binop(BinOp::And, SymExpr::constant(Width::W16, 0xFF));
        let full = simplify_with(&e, SimplifyOptions::full());
        let no_bytes = simplify_with(&e, SimplifyOptions::without_byte_rules());
        assert!(count_ops(&full) < count_ops(&no_bytes));
    }

    #[test]
    fn double_logical_not_of_comparison_collapses() {
        let cmp = SymExpr::input_byte(0)
            .zext(Width::W32)
            .binop(BinOp::LeU, SymExpr::constant(Width::W32, 10));
        let e = cmp.unop(UnOp::LogicalNot).unop(UnOp::LogicalNot);
        assert_eq!(simplify(&e), cmp);
    }

    #[test]
    fn widening_truncate_keeps_the_narrower_truncation() {
        // Found by the solver differential harness: Shrink(32, Shrink(8, x₁₆))
        // masks to 8 bits and then zero-extends; fusing the two truncations
        // would resurrect the high byte of x.
        let x = be16(0, 1);
        let e = x.truncate(Width::W8).truncate(Width::W32);
        let s = simplify(&e);
        let input = vec![0x12u8, 0x34];
        assert_eq!(eval(&e, &input), 0x34);
        assert_eq!(eval(&s, &input), 0x34, "simplify changed the value: {s}");
    }

    #[test]
    fn truncate_of_zero_extension_round_trips() {
        let b = SymExpr::input_byte(3);
        let e = b.zext(Width::W64).truncate(Width::W8);
        assert_eq!(simplify(&e), b);
    }

    #[test]
    fn mul_by_zero_is_zero_even_when_tainted() {
        let e = SymExpr::input_byte(0)
            .zext(Width::W32)
            .binop(BinOp::Mul, SymExpr::constant(Width::W32, 0));
        assert_eq!(simplify(&e).as_const(), Some(0));
    }

    #[test]
    fn repeated_simplification_is_a_cache_hit() {
        let e = be16(30, 31).binop(BinOp::And, SymExpr::constant(Width::W16, 0xFF));
        let first = simplify(&e);
        let before = memo_len();
        let second = simplify(&e);
        assert_eq!(first, second);
        assert_eq!(memo_len(), before, "second call must not add memo entries");
    }

    #[test]
    fn deep_chains_do_not_overflow_the_stack() {
        // 100k nested adds would overflow a recursive simplifier.
        let mut e = SymExpr::input_byte(0).zext(Width::W64);
        for i in 0..100_000u64 {
            e = e.binop(BinOp::Add, SymExpr::constant(Width::W64, (i % 7) + 1));
        }
        let s = simplify(&e);
        assert!(s.op_count() <= e.op_count());
    }

    #[test]
    fn simplification_preserves_semantics_on_endianness_conversion() {
        // The exact shape from the paper's running example: a 16-bit
        // big-endian field, masked, shifted and recombined, then widened and
        // multiplied.  Simplification must not change its value.
        let height = be16(4, 5);
        let width_f = be16(6, 7);
        let check = height
            .zext(Width::W64)
            .binop(BinOp::Mul, width_f.zext(Width::W64))
            .binop(BinOp::LeU, SymExpr::constant(Width::W64, (1u64 << 29) - 1));
        let simplified = simplify(&check);
        for input in [
            vec![0u8, 0, 0, 0, 0x12, 0x34, 0x00, 0x40],
            vec![0u8, 0, 0, 0, 0xF5, 0x80, 0x5A, 0xA0],
            vec![0u8, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF],
        ] {
            assert_eq!(eval(&check, &input), eval(&simplified, &input));
        }
    }
}

// Property-based checks that simplification preserves semantics.  They need
// the external `proptest` crate, which offline build environments cannot
// fetch, so the module only compiles with `--features proptests`.  The
// deterministic equivalent lives in `tests/arena_invariants.rs`.
#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use crate::count_ops;
    use crate::eval::eval;
    use proptest::prelude::*;

    /// Strategy producing random expressions over input bytes 0..4.
    fn arb_expr(depth: u32) -> BoxedStrategy<ExprRef> {
        let leaf = prop_oneof![
            (0usize..4).prop_map(SymExpr::input_byte),
            (any::<u64>(), 0usize..4).prop_map(|(v, w)| { SymExpr::constant(Width::all()[w], v) }),
        ];
        leaf.prop_recursive(depth, 64, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone(), 0usize..12, 0usize..4).prop_map(|(a, b, op, w)| {
                    let ops = [
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Mul,
                        BinOp::And,
                        BinOp::Or,
                        BinOp::Xor,
                        BinOp::Shl,
                        BinOp::ShrU,
                        BinOp::ShrS,
                        BinOp::LeU,
                        BinOp::LtS,
                        BinOp::Eq,
                    ];
                    let width = Width::all()[w];
                    let a = a.zext(width);
                    let b = b.zext(width);
                    a.binop(ops[op], b)
                }),
                (inner.clone(), 0usize..4, 0usize..3).prop_map(|(a, w, k)| {
                    let kinds = [CastKind::ZeroExt, CastKind::SignExt, CastKind::Truncate];
                    match kinds[k] {
                        CastKind::ZeroExt => a.zext(Width::all()[w]),
                        CastKind::SignExt => a.sext(Width::all()[w]),
                        CastKind::Truncate => a.truncate(Width::all()[w]),
                    }
                }),
                (inner, 0usize..3).prop_map(|(a, k)| {
                    let ops = [UnOp::Neg, UnOp::Not, UnOp::LogicalNot];
                    a.unop(ops[k])
                }),
            ]
            .boxed()
        })
        .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn simplify_preserves_value(expr in arb_expr(4), bytes in proptest::collection::vec(any::<u8>(), 4)) {
            let simplified = simplify(&expr);
            prop_assert_eq!(eval(&expr, &bytes), eval(&simplified, &bytes));
        }

        #[test]
        fn simplify_never_grows_expressions(expr in arb_expr(4)) {
            let simplified = simplify(&expr);
            prop_assert!(count_ops(&simplified) <= count_ops(&expr));
        }

        #[test]
        fn simplify_is_idempotent(expr in arb_expr(3), bytes in proptest::collection::vec(any::<u8>(), 4)) {
            let once = simplify(&expr);
            let twice = simplify(&once);
            prop_assert_eq!(eval(&once, &bytes), eval(&twice, &bytes));
            prop_assert!(count_ops(&twice) <= count_ops(&once));
        }
    }
}

//! Expression simplification.
//!
//! As the symbolic expressions are recorded during the instrumented execution
//! of the donor, Code Phage applies optimisations that reduce the size of the
//! generated expressions (paper Section 3.2, Figure 5).  The most important of
//! these simplify bit-manipulation operations — shifts, masks and ors that
//! extract, align or combine operands — because such operations occur
//! constantly when applications read multi-byte fields out of their inputs.
//!
//! [`simplify`] performs a bottom-up pass applying
//!
//! * constant folding,
//! * algebraic identities (`x + 0`, `x | 0`, `x & ~0`, `x * 1`, `x << 0`, …),
//! * cast fusion (`Shrink(ToSize(x))`, nested truncations, …), and
//! * the generalised Figure 5 byte-structure rules via [`crate::bytes`].
//!
//! Simplification never changes the value of an expression; the property tests
//! at the bottom of this module check this against random byte environments.

use crate::bytes::{decompose, recompose};
use crate::count_ops;
use crate::eval::eval_binop;
use crate::expr::{ExprRef, SymExpr};
use crate::op::{BinOp, CastKind, UnOp};
use crate::width::Width;
use std::sync::Arc;

/// Options controlling which rule families are applied.
///
/// The benchmark harness uses this to reproduce the paper's observation that
/// the bit-manipulation rules "significantly reduce the size and complexity of
/// the extracted symbolic expressions".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimplifyOptions {
    /// Apply constant folding and algebraic identities.
    pub algebraic: bool,
    /// Apply the Figure 5 byte-structure rules.
    pub byte_rules: bool,
}

impl Default for SimplifyOptions {
    fn default() -> Self {
        SimplifyOptions {
            algebraic: true,
            byte_rules: true,
        }
    }
}

impl SimplifyOptions {
    /// All rule families enabled.
    pub fn full() -> Self {
        Self::default()
    }

    /// Disable the Figure 5 byte rules (ablation configuration).
    pub fn without_byte_rules() -> Self {
        SimplifyOptions {
            algebraic: true,
            byte_rules: false,
        }
    }

    /// Disable everything (identity transformation).
    pub fn none() -> Self {
        SimplifyOptions {
            algebraic: false,
            byte_rules: false,
        }
    }
}

/// Simplifies an expression with the default (full) rule set.
pub fn simplify(expr: &SymExpr) -> ExprRef {
    simplify_with(expr, SimplifyOptions::default())
}

/// Simplifies an expression with an explicit rule selection.
pub fn simplify_with(expr: &SymExpr, options: SimplifyOptions) -> ExprRef {
    let rebuilt = match expr {
        SymExpr::Const { .. } | SymExpr::InputByte { .. } | SymExpr::Field { .. } => {
            Arc::new(expr.clone())
        }
        SymExpr::Unary { op, width, arg } => {
            let arg = simplify_with(arg, options);
            simplify_unary(*op, *width, arg, options)
        }
        SymExpr::Binary {
            op,
            width,
            lhs,
            rhs,
        } => {
            let lhs = simplify_with(lhs, options);
            let rhs = simplify_with(rhs, options);
            simplify_binary(*op, *width, lhs, rhs, options)
        }
        SymExpr::Cast { kind, width, arg } => {
            let arg = simplify_with(arg, options);
            simplify_cast(*kind, *width, arg, options)
        }
    };
    if options.byte_rules {
        apply_byte_rules(rebuilt)
    } else {
        rebuilt
    }
}

fn apply_byte_rules(expr: ExprRef) -> ExprRef {
    if let Some(bytes) = decompose(&expr) {
        let rebuilt = recompose(&bytes, expr.width());
        if count_ops(&rebuilt) < count_ops(&expr) {
            return rebuilt;
        }
    }
    expr
}

fn simplify_unary(op: UnOp, width: Width, arg: ExprRef, options: SimplifyOptions) -> ExprRef {
    if !options.algebraic {
        return Arc::new(SymExpr::Unary { op, width, arg });
    }
    if let Some(v) = arg.as_const() {
        let value = match op {
            UnOp::Neg => width.truncate(v.wrapping_neg()),
            UnOp::Not => width.truncate(!v),
            UnOp::LogicalNot => (v == 0) as u64,
        };
        return SymExpr::constant(width, value);
    }
    // Double negation / complement elimination.
    if let SymExpr::Unary {
        op: inner_op,
        arg: inner,
        ..
    } = arg.as_ref()
    {
        if *inner_op == op && matches!(op, UnOp::Neg | UnOp::Not) {
            return inner.clone();
        }
        // LogicalNot(LogicalNot(x)) is the 0/1 normalisation of x; keep it when
        // x is already a comparison (whose value is known to be 0/1).
        if op == UnOp::LogicalNot && *inner_op == UnOp::LogicalNot {
            if let SymExpr::Binary { op: cmp, .. } = inner.as_ref() {
                if cmp.is_comparison() {
                    return inner.clone();
                }
            }
        }
    }
    Arc::new(SymExpr::Unary { op, width, arg })
}

fn simplify_cast(kind: CastKind, width: Width, arg: ExprRef, options: SimplifyOptions) -> ExprRef {
    if !options.algebraic {
        if arg.width() == width {
            return arg;
        }
        return Arc::new(SymExpr::Cast { kind, width, arg });
    }
    let from = arg.width();
    if from == width {
        return arg;
    }
    if let Some(v) = arg.as_const() {
        let value = match kind {
            CastKind::ZeroExt => from.truncate(v),
            CastKind::SignExt => width.truncate(from.sign_extend(v)),
            CastKind::Truncate => width.truncate(v),
        };
        return SymExpr::constant(width, value);
    }
    // Cast fusion.
    if let SymExpr::Cast {
        kind: inner_kind,
        arg: inner,
        ..
    } = arg.as_ref()
    {
        match (inner_kind, kind) {
            // ZeroExt(ZeroExt(x)) => ZeroExt(x)
            (CastKind::ZeroExt, CastKind::ZeroExt) => {
                return simplify_cast(CastKind::ZeroExt, width, inner.clone(), options);
            }
            // Truncate(ZeroExt(x)) where the truncation lands back at or below
            // the original width is either x itself or a narrower truncation.
            (CastKind::ZeroExt, CastKind::Truncate) => {
                if width == inner.width() {
                    return inner.clone();
                }
                if width < inner.width() {
                    return simplify_cast(CastKind::Truncate, width, inner.clone(), options);
                }
                return simplify_cast(CastKind::ZeroExt, width, inner.clone(), options);
            }
            // Truncate(Truncate(x)) => Truncate(x)
            (CastKind::Truncate, CastKind::Truncate) => {
                return simplify_cast(CastKind::Truncate, width, inner.clone(), options);
            }
            _ => {}
        }
    }
    Arc::new(SymExpr::Cast { kind, width, arg })
}

fn simplify_binary(
    op: BinOp,
    width: Width,
    lhs: ExprRef,
    rhs: ExprRef,
    options: SimplifyOptions,
) -> ExprRef {
    if !options.algebraic {
        return Arc::new(SymExpr::Binary {
            op,
            width,
            lhs,
            rhs,
        });
    }
    // Constant folding.
    if let (Some(a), Some(b)) = (lhs.as_const(), rhs.as_const()) {
        let operand_width = if op.is_comparison() {
            lhs.width()
        } else {
            width
        };
        let value = eval_binop(
            op,
            operand_width,
            operand_width.truncate(a),
            operand_width.truncate(b),
        );
        return SymExpr::constant(width, value);
    }
    // Canonicalise constants to the right for commutative operators so the
    // identity rules below only need to look at `rhs`.
    let (lhs, rhs) = if op.is_commutative() && lhs.as_const().is_some() && rhs.as_const().is_none()
    {
        (rhs, lhs)
    } else {
        (lhs, rhs)
    };
    if let Some(c) = rhs.as_const() {
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor if c == 0 => return lhs,
            BinOp::Shl | BinOp::ShrU | BinOp::ShrS if c == 0 => return lhs,
            BinOp::Mul if c == 1 => return lhs,
            BinOp::DivU if c == 1 => return lhs,
            BinOp::Mul if c == 0 => return SymExpr::constant(width, 0),
            BinOp::And if c == 0 => return SymExpr::constant(width, 0),
            BinOp::And if c == width.mask() => return lhs,
            BinOp::Or if c == width.mask() => return SymExpr::constant(width, width.mask()),
            _ => {}
        }
    }
    // x - x => 0, x ^ x => 0, x & x => x, x | x => x.
    if lhs == rhs {
        match op {
            BinOp::Sub | BinOp::Xor => return SymExpr::constant(width, 0),
            BinOp::And | BinOp::Or => return lhs,
            BinOp::Eq | BinOp::LeU | BinOp::LeS => return SymExpr::constant(Width::W8, 1),
            BinOp::Ne | BinOp::LtU | BinOp::LtS => return SymExpr::constant(Width::W8, 0),
            _ => {}
        }
    }
    Arc::new(SymExpr::Binary {
        op,
        width,
        lhs,
        rhs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::expr::ExprBuild;
    use crate::input_support;

    fn be16(hi: usize, lo: usize) -> ExprRef {
        SymExpr::input_byte(hi)
            .zext(Width::W16)
            .binop(BinOp::Shl, SymExpr::constant(Width::W16, 8))
            .binop(BinOp::Or, SymExpr::input_byte(lo).zext(Width::W16))
    }

    #[test]
    fn constant_folding_collapses_pure_constant_trees() {
        let e = SymExpr::constant(Width::W32, 6)
            .binop(BinOp::Mul, SymExpr::constant(Width::W32, 7))
            .binop(BinOp::Add, SymExpr::constant(Width::W32, 0));
        assert_eq!(simplify(&e).as_const(), Some(42));
    }

    #[test]
    fn identity_rules_remove_neutral_elements() {
        let x = SymExpr::input_byte(0).zext(Width::W32);
        let e = x
            .binop(BinOp::Add, SymExpr::constant(Width::W32, 0))
            .binop(BinOp::Mul, SymExpr::constant(Width::W32, 1))
            .binop(BinOp::Or, SymExpr::constant(Width::W32, 0));
        assert_eq!(simplify(&e), x);
    }

    #[test]
    fn byte_rules_disentangle_low_byte_extraction() {
        // Extracting the low byte of a big-endian 16-bit read should reduce to
        // a zero extension of the single input byte (Fig. 5 rule 1).
        let e = be16(10, 11).binop(BinOp::And, SymExpr::constant(Width::W16, 0xFF));
        let s = simplify(&e);
        assert_eq!(count_ops(&s), 1);
        assert_eq!(input_support(&s).into_iter().collect::<Vec<_>>(), vec![11]);
    }

    #[test]
    fn byte_rules_disentangle_high_byte_extraction() {
        let e = be16(10, 11)
            .binop(BinOp::And, SymExpr::constant(Width::W16, 0xFF00))
            .binop(BinOp::ShrU, SymExpr::constant(Width::W16, 8));
        let s = simplify(&e);
        assert_eq!(count_ops(&s), 1);
        assert_eq!(input_support(&s).into_iter().collect::<Vec<_>>(), vec![10]);
    }

    #[test]
    fn ablation_without_byte_rules_keeps_shifts() {
        let e = be16(10, 11).binop(BinOp::And, SymExpr::constant(Width::W16, 0xFF));
        let full = simplify_with(&e, SimplifyOptions::full());
        let no_bytes = simplify_with(&e, SimplifyOptions::without_byte_rules());
        assert!(count_ops(&full) < count_ops(&no_bytes));
    }

    #[test]
    fn double_logical_not_of_comparison_collapses() {
        let cmp = SymExpr::input_byte(0)
            .zext(Width::W32)
            .binop(BinOp::LeU, SymExpr::constant(Width::W32, 10));
        let e = cmp.unop(UnOp::LogicalNot).unop(UnOp::LogicalNot);
        assert_eq!(simplify(&e), cmp);
    }

    #[test]
    fn truncate_of_zero_extension_round_trips() {
        let b = SymExpr::input_byte(3);
        let e = b.zext(Width::W64).truncate(Width::W8);
        assert_eq!(simplify(&e), b);
    }

    #[test]
    fn mul_by_zero_is_zero_even_when_tainted() {
        let e = SymExpr::input_byte(0)
            .zext(Width::W32)
            .binop(BinOp::Mul, SymExpr::constant(Width::W32, 0));
        assert_eq!(simplify(&e).as_const(), Some(0));
    }

    #[test]
    fn simplification_preserves_semantics_on_endianness_conversion() {
        // The exact shape from the paper's running example: a 16-bit
        // big-endian field, masked, shifted and recombined, then widened and
        // multiplied.  Simplification must not change its value.
        let height = be16(4, 5);
        let width_f = be16(6, 7);
        let check = height
            .zext(Width::W64)
            .binop(BinOp::Mul, width_f.zext(Width::W64))
            .binop(BinOp::LeU, SymExpr::constant(Width::W64, (1u64 << 29) - 1));
        let simplified = simplify(&check);
        for input in [
            vec![0u8, 0, 0, 0, 0x12, 0x34, 0x00, 0x40],
            vec![0u8, 0, 0, 0, 0xF5, 0x80, 0x5A, 0xA0],
            vec![0u8, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF],
        ] {
            assert_eq!(eval(&check, &input), eval(&simplified, &input));
        }
    }
}

// Property-based checks that simplification preserves semantics.  They need
// the external `proptest` crate, which offline build environments cannot
// fetch, so the module only compiles with `--features proptests`.
#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use crate::eval::eval;
    use proptest::prelude::*;

    /// Strategy producing random expressions over input bytes 0..4.
    fn arb_expr(depth: u32) -> BoxedStrategy<ExprRef> {
        let leaf = prop_oneof![
            (0usize..4).prop_map(SymExpr::input_byte),
            (any::<u64>(), 0usize..4).prop_map(|(v, w)| { SymExpr::constant(Width::all()[w], v) }),
        ];
        leaf.prop_recursive(depth, 64, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone(), 0usize..12, 0usize..4).prop_map(|(a, b, op, w)| {
                    let ops = [
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Mul,
                        BinOp::And,
                        BinOp::Or,
                        BinOp::Xor,
                        BinOp::Shl,
                        BinOp::ShrU,
                        BinOp::ShrS,
                        BinOp::LeU,
                        BinOp::LtS,
                        BinOp::Eq,
                    ];
                    let width = Width::all()[w];
                    let a = a.zext(width);
                    let b = b.zext(width);
                    a.binop(ops[op], b)
                }),
                (inner.clone(), 0usize..4, 0usize..3).prop_map(|(a, w, k)| {
                    let kinds = [CastKind::ZeroExt, CastKind::SignExt, CastKind::Truncate];
                    match kinds[k] {
                        CastKind::ZeroExt => a.zext(Width::all()[w]),
                        CastKind::SignExt => a.sext(Width::all()[w]),
                        CastKind::Truncate => a.truncate(Width::all()[w]),
                    }
                }),
                (inner, 0usize..3).prop_map(|(a, k)| {
                    let ops = [UnOp::Neg, UnOp::Not, UnOp::LogicalNot];
                    a.unop(ops[k])
                }),
            ]
            .boxed()
        })
        .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn simplify_preserves_value(expr in arb_expr(4), bytes in proptest::collection::vec(any::<u8>(), 4)) {
            let simplified = simplify(&expr);
            prop_assert_eq!(eval(&expr, &bytes), eval(&simplified, &bytes));
        }

        #[test]
        fn simplify_never_grows_expressions(expr in arb_expr(4)) {
            let simplified = simplify(&expr);
            prop_assert!(count_ops(&simplified) <= count_ops(&expr));
        }

        #[test]
        fn simplify_is_idempotent(expr in arb_expr(3), bytes in proptest::collection::vec(any::<u8>(), 4)) {
            let once = simplify(&expr);
            let twice = simplify(&once);
            prop_assert_eq!(eval(&once, &bytes), eval(&twice, &bytes));
            prop_assert!(count_ops(&twice) <= count_ops(&once));
        }
    }
}

//! Input-support sets: which input byte offsets an expression depends on.
//!
//! Code Phage queries expression support constantly — to filter the branches
//! an error-triggering byte influences (Section 3.2) and as the solver's
//! disjoint-support fast path (Section 3.3).  Walking the expression tree per
//! query is quadratic over a long trace, so the arena memoises a
//! [`SupportSet`] on every node at intern time and support queries become
//! O(1) lookups plus cheap set operations.
//!
//! The representation is a byte-offset bitset: offsets below
//! [`SupportSet::SPILL_THRESHOLD`] live in a dense word array sized to the
//! largest offset actually present, and the (pathological) offsets above it
//! spill into a small sorted array so adversarial programs probing huge
//! offsets cannot force multi-megabyte allocations per node.

/// A set of input byte offsets, optimised for union / disjointness / probe
/// queries over the dense offsets real inputs produce.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupportSet {
    /// Bit `o % 64` of `words[o / 64]` is set iff offset `o` is in the set
    /// (offsets below [`Self::SPILL_THRESHOLD`] only).
    words: Box<[u64]>,
    /// Sorted offsets at or above [`Self::SPILL_THRESHOLD`].
    spill: Box<[usize]>,
    /// Cached element count.
    len: usize,
}

impl SupportSet {
    /// Offsets at or above this bound are stored sparsely.  One megabyte of
    /// dense bitset covers every input this reproduction processes.
    pub const SPILL_THRESHOLD: usize = 1 << 20;

    /// The empty set (does not allocate).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The set containing exactly `offset`.
    pub fn singleton(offset: usize) -> Self {
        Self::from_offsets([offset])
    }

    /// Builds a set from arbitrary offsets (duplicates are fine).
    pub fn from_offsets(offsets: impl IntoIterator<Item = usize>) -> Self {
        let mut small: Vec<usize> = Vec::new();
        let mut spill: Vec<usize> = Vec::new();
        for offset in offsets {
            if offset < Self::SPILL_THRESHOLD {
                small.push(offset);
            } else {
                spill.push(offset);
            }
        }
        let mut words = vec![0u64; small.iter().map(|o| o / 64 + 1).max().unwrap_or(0)];
        for offset in small {
            words[offset / 64] |= 1 << (offset % 64);
        }
        spill.sort_unstable();
        spill.dedup();
        let len = words.iter().map(|w| w.count_ones() as usize).sum::<usize>() + spill.len();
        SupportSet {
            words: words.into_boxed_slice(),
            spill: spill.into_boxed_slice(),
            len,
        }
    }

    /// The union of two sets.
    pub fn union(a: &Self, b: &Self) -> Self {
        if a.is_empty() {
            return b.clone();
        }
        if b.is_empty() {
            return a.clone();
        }
        let (longer, shorter) = if a.words.len() >= b.words.len() {
            (&a.words, &b.words)
        } else {
            (&b.words, &a.words)
        };
        let mut words = longer.to_vec();
        for (w, s) in words.iter_mut().zip(shorter.iter()) {
            *w |= s;
        }
        let mut spill: Vec<usize> = a.spill.iter().chain(b.spill.iter()).copied().collect();
        spill.sort_unstable();
        spill.dedup();
        let len = words.iter().map(|w| w.count_ones() as usize).sum::<usize>() + spill.len();
        SupportSet {
            words: words.into_boxed_slice(),
            spill: spill.into_boxed_slice(),
            len,
        }
    }

    /// Number of offsets in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `offset` is in the set.
    pub fn contains(&self, offset: usize) -> bool {
        if offset < Self::SPILL_THRESHOLD {
            self.words
                .get(offset / 64)
                .is_some_and(|w| w & (1 << (offset % 64)) != 0)
        } else {
            self.spill.binary_search(&offset).is_ok()
        }
    }

    /// Whether any of `offsets` is in the set.
    pub fn contains_any(&self, offsets: &[usize]) -> bool {
        offsets.iter().any(|&o| self.contains(o))
    }

    /// Whether the two sets share no offset — the solver's fast-path
    /// predicate.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        if self
            .words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
        {
            return false;
        }
        // Both spill arrays are sorted: one linear merge pass.
        let (mut i, mut j) = (0, 0);
        while i < self.spill.len() && j < other.spill.len() {
            match self.spill[i].cmp(&other.spill[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// The offsets in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(i, &word)| {
                (0..64).filter_map(move |bit| {
                    if word & (1 << bit) != 0 {
                        Some(i * 64 + bit)
                    } else {
                        None
                    }
                })
            })
            .chain(self.spill.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_iterates_in_order() {
        let s = SupportSet::from_offsets([7, 3, 200, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 7, 200]);
        assert!(s.contains(200));
        assert!(!s.contains(4));
    }

    #[test]
    fn empty_set_does_not_allocate_words() {
        let s = SupportSet::empty();
        assert!(s.is_empty());
        assert_eq!(s.words.len(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    fn union_merges_dense_and_spill_offsets() {
        let big = SupportSet::SPILL_THRESHOLD + 17;
        let a = SupportSet::from_offsets([1, 64, big]);
        let b = SupportSet::from_offsets([2, 64, big, big + 1]);
        let u = SupportSet::union(&a, &b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 64, big, big + 1]);
        assert_eq!(u.len(), 5);
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = SupportSet::from_offsets([5, 9]);
        assert_eq!(SupportSet::union(&a, &SupportSet::empty()), a);
        assert_eq!(SupportSet::union(&SupportSet::empty(), &a), a);
    }

    #[test]
    fn disjointness_checks_words_and_spill() {
        let big = SupportSet::SPILL_THRESHOLD;
        let a = SupportSet::from_offsets([0, 100, big + 2]);
        let b = SupportSet::from_offsets([1, 101, big + 4]);
        assert!(a.is_disjoint(&b));
        let c = SupportSet::from_offsets([100]);
        assert!(!a.is_disjoint(&c));
        let d = SupportSet::from_offsets([big + 2]);
        assert!(!a.is_disjoint(&d));
    }

    #[test]
    fn huge_offsets_stay_sparse() {
        let s = SupportSet::from_offsets([usize::MAX - 1, 3]);
        assert!(s.words.len() <= 1);
        assert!(s.contains(usize::MAX - 1));
        assert!(s.contains(3));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn contains_any_probes_slices() {
        let s = SupportSet::from_offsets([10, 20]);
        assert!(s.contains_any(&[1, 2, 20]));
        assert!(!s.contains_any(&[1, 2, 3]));
        assert!(!s.contains_any(&[]));
    }
}

//! Iterative bottom-up rebuilding of expression DAGs.
//!
//! Several passes share the same traversal skeleton: visit an expression
//! post-order with an explicit work stack (so 100k-deep loop-carried chains
//! cannot overflow the call stack), rebuild every composite node from its
//! already-processed children, memoise per interned node (so shared subtrees
//! are rebuilt once), and apply a pass-specific transformation.  [`rebuild`]
//! is that skeleton; `cp_formats::fold_fields` and the translator's
//! substitution pass are its instantiations.

use crate::expr::{ExprRef, SymExpr};
use std::collections::HashMap;

/// Rebuilds `root` bottom-up.
///
/// For every node, `enter` runs first (on the *original* node, before its
/// children are visited): returning `Some(replacement)` short-circuits the
/// node — the replacement is used as-is and the subtree below is never
/// walked.  Otherwise the node is rebuilt with its processed children and
/// `exit` maps the rebuilt node to the final result.  Results are memoised
/// per interned node, so a subtree shared by many parents is processed once.
pub fn rebuild(
    root: &ExprRef,
    mut enter: impl FnMut(&ExprRef) -> Option<ExprRef>,
    mut exit: impl FnMut(ExprRef) -> ExprRef,
) -> ExprRef {
    let mut done: HashMap<usize, ExprRef> = HashMap::new();
    let mut stack: Vec<(ExprRef, bool)> = vec![(*root, false)];
    while let Some((e, ready)) = stack.pop() {
        if done.contains_key(&e.memo_key()) {
            continue;
        }
        if ready {
            let child = |c: &ExprRef| done[&c.memo_key()];
            let rebuilt = match e.as_ref() {
                SymExpr::Unary { op, width, arg } => SymExpr::unary(*op, *width, child(arg)),
                SymExpr::Binary {
                    op,
                    width,
                    lhs,
                    rhs,
                } => SymExpr::binary(*op, *width, child(lhs), child(rhs)),
                SymExpr::Cast { kind, width, arg } => SymExpr::cast(*kind, *width, child(arg)),
                _ => unreachable!("leaves are resolved before the ready pass"),
            };
            done.insert(e.memo_key(), exit(rebuilt));
            continue;
        }
        if let Some(replacement) = enter(&e) {
            done.insert(e.memo_key(), replacement);
            continue;
        }
        match e.as_ref() {
            SymExpr::Const { .. } | SymExpr::InputByte { .. } | SymExpr::Field { .. } => {
                done.insert(e.memo_key(), exit(e));
            }
            SymExpr::Unary { arg, .. } | SymExpr::Cast { arg, .. } => {
                stack.push((e, true));
                stack.push((*arg, false));
            }
            SymExpr::Binary { lhs, rhs, .. } => {
                stack.push((e, true));
                stack.push((*lhs, false));
                stack.push((*rhs, false));
            }
        }
    }
    done[&root.memo_key()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ExprBuild;
    use crate::op::BinOp;
    use crate::width::Width;

    #[test]
    fn identity_rebuild_returns_the_same_interned_nodes() {
        let e = SymExpr::input_byte(0)
            .zext(Width::W32)
            .binop(BinOp::Add, SymExpr::constant(Width::W32, 5));
        let same = rebuild(&e, |_| None, |n| n);
        assert_eq!(e, same);
    }

    #[test]
    fn enter_short_circuits_whole_subtrees() {
        let a = SymExpr::input_byte(0).zext(Width::W32);
        let b = SymExpr::input_byte(1).zext(Width::W32);
        let e = a.binop(BinOp::Add, SymExpr::constant(Width::W32, 1));
        let swapped = rebuild(&e, |n| (*n == a).then_some(b), |n| n);
        assert_eq!(
            swapped,
            b.binop(BinOp::Add, SymExpr::constant(Width::W32, 1))
        );
    }

    #[test]
    fn exit_sees_every_rebuilt_node_once() {
        let shared = SymExpr::input_byte(3).zext(Width::W16);
        let e = shared.binop(BinOp::Add, shared);
        let mut visits = 0;
        rebuild(
            &e,
            |_| None,
            |n| {
                visits += 1;
                n
            },
        );
        // input byte, zext, add — the shared zext counts once.
        assert_eq!(visits, 3);
    }

    #[test]
    fn deep_chains_rebuild_without_stack_overflow() {
        let mut e = SymExpr::input_byte(0).zext(Width::W64);
        for _ in 0..100_000u32 {
            e = e.binop(BinOp::Add, SymExpr::constant(Width::W64, 1));
        }
        let same = rebuild(&e, |_| None, |n| n);
        assert_eq!(e, same);
    }
}

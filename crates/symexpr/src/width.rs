//! Bitvector widths used throughout the pipeline.
//!
//! Code Phage works at the machine-word granularities that appear in the
//! donor/recipient binaries: 8, 16, 32 and 64 bits.  The paper's excised
//! expressions carry an explicit width on every node (e.g. `Mul(64, ...)`),
//! and the Figure 5 rewrite rules are stated per width combination; we mirror
//! that with a small closed enum.

use std::fmt;

/// A bitvector width (8, 16, 32 or 64 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 8-bit value.
    W8,
    /// 16-bit value.
    W16,
    /// 32-bit value.
    W32,
    /// 64-bit value.
    W64,
}

impl Width {
    /// Number of bits.
    pub fn bits(self) -> u32 {
        match self {
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
            Width::W64 => 64,
        }
    }

    /// Number of bytes.
    pub fn bytes(self) -> usize {
        (self.bits() / 8) as usize
    }

    /// Bit mask selecting exactly the bits of this width.
    pub fn mask(self) -> u64 {
        match self {
            Width::W8 => 0xFF,
            Width::W16 => 0xFFFF,
            Width::W32 => 0xFFFF_FFFF,
            Width::W64 => u64::MAX,
        }
    }

    /// Truncates `value` to this width.
    pub fn truncate(self, value: u64) -> u64 {
        value & self.mask()
    }

    /// Sign extends a value of this width to 64 bits (as `i64` reinterpreted).
    pub fn sign_extend(self, value: u64) -> u64 {
        let v = self.truncate(value);
        let shift = 64 - self.bits();
        (((v << shift) as i64) >> shift) as u64
    }

    /// Returns the smallest [`Width`] that can hold `bits` bits, if any.
    pub fn from_bits(bits: u32) -> Option<Width> {
        match bits {
            8 => Some(Width::W8),
            16 => Some(Width::W16),
            32 => Some(Width::W32),
            64 => Some(Width::W64),
            _ => None,
        }
    }

    /// Returns the [`Width`] covering exactly `bytes` bytes, if any.
    pub fn from_bytes(bytes: usize) -> Option<Width> {
        Width::from_bits((bytes as u32) * 8)
    }

    /// All widths, smallest first.
    pub fn all() -> [Width; 4] {
        [Width::W8, Width::W16, Width::W32, Width::W64]
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_match_widths() {
        assert_eq!(Width::W8.mask(), 0xFF);
        assert_eq!(Width::W16.mask(), 0xFFFF);
        assert_eq!(Width::W32.mask(), 0xFFFF_FFFF);
        assert_eq!(Width::W64.mask(), u64::MAX);
    }

    #[test]
    fn truncate_discards_high_bits() {
        assert_eq!(Width::W8.truncate(0x1FF), 0xFF);
        assert_eq!(Width::W16.truncate(0x1_0001), 1);
        assert_eq!(Width::W32.truncate(u64::MAX), 0xFFFF_FFFF);
    }

    #[test]
    fn sign_extend_propagates_sign_bit() {
        assert_eq!(Width::W8.sign_extend(0x80), 0xFFFF_FFFF_FFFF_FF80);
        assert_eq!(Width::W8.sign_extend(0x7F), 0x7F);
        assert_eq!(Width::W16.sign_extend(0x8000), 0xFFFF_FFFF_FFFF_8000);
        assert_eq!(Width::W32.sign_extend(0x8000_0000), 0xFFFF_FFFF_8000_0000);
        assert_eq!(Width::W64.sign_extend(u64::MAX), u64::MAX);
    }

    #[test]
    fn from_bits_round_trips() {
        for w in Width::all() {
            assert_eq!(Width::from_bits(w.bits()), Some(w));
            assert_eq!(Width::from_bytes(w.bytes()), Some(w));
        }
        assert_eq!(Width::from_bits(12), None);
        assert_eq!(Width::from_bytes(3), None);
    }

    #[test]
    fn display_prints_bit_count() {
        assert_eq!(Width::W32.to_string(), "32");
    }
}

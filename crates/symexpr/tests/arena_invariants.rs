//! Deterministic randomized tests for the hash-consing invariants of the
//! expression arena.
//!
//! The offline build environment cannot fetch `proptest`, so these tests use
//! a seeded xorshift generator: the same structures every run, no network, no
//! flakes.  Each case builds random expressions and checks the arena against
//! straightforward reference implementations that re-walk the tree the way
//! the pre-arena code did:
//!
//! * structurally equal expressions intern to the same `ExprId`;
//! * memoised metadata (`op_count`, `node_count`, `is_tainted`, `support`)
//!   agrees with a recursive reference walk;
//! * `simplify` over the arena evaluates identically to the raw expression
//!   under random byte environments, never grows the expression, and stays
//!   semantically stable when applied twice.

use cp_symexpr::eval::eval;
use cp_symexpr::rewrite::simplify;
use cp_symexpr::{BinOp, ExprBuild, ExprRef, SymExpr, UnOp, Width};
use std::collections::BTreeSet;

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

const INPUT_BYTES: usize = 8;

/// Builds a random expression of the given depth over input bytes
/// `0..INPUT_BYTES`.  Identical `Rng` streams build identical structures.
fn random_expr(rng: &mut Rng, depth: u32) -> ExprRef {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(3) {
            0 => SymExpr::input_byte(rng.below(INPUT_BYTES as u64) as usize),
            1 => SymExpr::constant(Width::all()[rng.below(4) as usize], rng.next()),
            _ => {
                let hi = rng.below(INPUT_BYTES as u64 - 1) as usize;
                SymExpr::field(format!("/f/{hi}"), Width::W16, vec![hi, hi + 1])
            }
        };
    }
    match rng.below(3) {
        0 => {
            const OPS: [BinOp; 14] = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::DivU,
                BinOp::And,
                BinOp::Or,
                BinOp::Xor,
                BinOp::Shl,
                BinOp::ShrU,
                BinOp::ShrS,
                BinOp::LeU,
                BinOp::LtS,
                BinOp::Eq,
                BinOp::Ne,
            ];
            let width = Width::all()[rng.below(4) as usize];
            let op = OPS[rng.below(OPS.len() as u64) as usize];
            let lhs = random_expr(rng, depth - 1).zext(width);
            let rhs = random_expr(rng, depth - 1).zext(width);
            lhs.binop(op, rhs)
        }
        1 => {
            let width = Width::all()[rng.below(4) as usize];
            let arg = random_expr(rng, depth - 1);
            match rng.below(3) {
                0 => arg.zext(width),
                1 => arg.sext(width),
                _ => arg.truncate(width),
            }
        }
        _ => {
            const OPS: [UnOp; 3] = [UnOp::Neg, UnOp::Not, UnOp::LogicalNot];
            random_expr(rng, depth - 1).unop(OPS[rng.below(3) as usize])
        }
    }
}

/// Reference operator count: the recursive walk `count_ops` used to perform.
fn ref_count_ops(expr: &SymExpr) -> usize {
    match expr {
        SymExpr::Const { .. } | SymExpr::InputByte { .. } | SymExpr::Field { .. } => 0,
        SymExpr::Unary { arg, .. } | SymExpr::Cast { arg, .. } => 1 + ref_count_ops(arg),
        SymExpr::Binary { lhs, rhs, .. } => 1 + ref_count_ops(lhs) + ref_count_ops(rhs),
    }
}

/// Reference node count.
fn ref_node_count(expr: &SymExpr) -> usize {
    match expr {
        SymExpr::Const { .. } | SymExpr::InputByte { .. } | SymExpr::Field { .. } => 1,
        SymExpr::Unary { arg, .. } | SymExpr::Cast { arg, .. } => 1 + ref_node_count(arg),
        SymExpr::Binary { lhs, rhs, .. } => 1 + ref_node_count(lhs) + ref_node_count(rhs),
    }
}

/// Reference taintedness.
fn ref_tainted(expr: &SymExpr) -> bool {
    match expr {
        SymExpr::Const { .. } => false,
        SymExpr::InputByte { .. } | SymExpr::Field { .. } => true,
        SymExpr::Unary { arg, .. } | SymExpr::Cast { arg, .. } => ref_tainted(arg),
        SymExpr::Binary { lhs, rhs, .. } => ref_tainted(lhs) || ref_tainted(rhs),
    }
}

/// Reference input support: the recursive collection `input_support` used to
/// perform.
fn ref_support(expr: &SymExpr, out: &mut BTreeSet<usize>) {
    match expr {
        SymExpr::Const { .. } => {}
        SymExpr::InputByte { offset } => {
            out.insert(*offset);
        }
        SymExpr::Field { offsets, .. } => out.extend(offsets.iter().copied()),
        SymExpr::Unary { arg, .. } | SymExpr::Cast { arg, .. } => ref_support(arg, out),
        SymExpr::Binary { lhs, rhs, .. } => {
            ref_support(lhs, out);
            ref_support(rhs, out);
        }
    }
}

fn random_env(rng: &mut Rng) -> Vec<u8> {
    (0..INPUT_BYTES).map(|_| rng.next() as u8).collect()
}

#[test]
fn structurally_equal_expressions_intern_to_the_same_id() {
    for seed in 1..=100u64 {
        let a = random_expr(&mut Rng::new(seed), 4);
        let b = random_expr(&mut Rng::new(seed), 4);
        assert_eq!(a, b, "seed {seed}: same stream, same structure");
        assert_eq!(a.id(), b.id(), "seed {seed}: same structure, same id");
    }
}

#[test]
fn different_structures_get_different_ids() {
    // Sanity against an interner that maps everything to one node.
    let mut ids = BTreeSet::new();
    for seed in 1..=50u64 {
        ids.insert(random_expr(&mut Rng::new(seed), 3).id().index());
    }
    assert!(
        ids.len() > 25,
        "expected mostly-distinct roots, got {ids:?}"
    );
}

#[test]
fn memoized_metadata_matches_reference_walks() {
    for seed in 1..=200u64 {
        let e = random_expr(&mut Rng::new(seed), 4);
        assert_eq!(e.op_count(), ref_count_ops(&e), "op_count, seed {seed}");
        assert_eq!(
            e.node_count(),
            ref_node_count(&e),
            "node_count, seed {seed}"
        );
        assert_eq!(e.is_tainted(), ref_tainted(&e), "tainted, seed {seed}");
        let mut expected = BTreeSet::new();
        ref_support(&e, &mut expected);
        assert_eq!(
            e.support().iter().collect::<BTreeSet<_>>(),
            expected,
            "support, seed {seed}"
        );
        assert_eq!(cp_symexpr::input_support(&e), expected);
    }
}

#[test]
fn simplify_preserves_evaluation_under_random_environments() {
    let mut env_rng = Rng::new(0xE11F);
    for seed in 1..=200u64 {
        let e = random_expr(&mut Rng::new(seed), 4);
        let s = simplify(&e);
        for _ in 0..8 {
            let env = random_env(&mut env_rng);
            assert_eq!(
                eval(&e, &env),
                eval(&s, &env),
                "seed {seed}: simplify changed the value of {e} (became {s}) under {env:?}"
            );
        }
    }
}

#[test]
fn simplify_never_grows_and_is_semantically_idempotent() {
    let mut env_rng = Rng::new(0x1D3);
    for seed in 1..=200u64 {
        let e = random_expr(&mut Rng::new(seed), 4);
        let once = simplify(&e);
        assert!(
            once.op_count() <= e.op_count(),
            "seed {seed}: simplify grew {} -> {} ops",
            e.op_count(),
            once.op_count()
        );
        let twice = simplify(&once);
        assert!(twice.op_count() <= once.op_count(), "seed {seed}");
        for _ in 0..4 {
            let env = random_env(&mut env_rng);
            assert_eq!(eval(&once, &env), eval(&twice, &env), "seed {seed}");
        }
    }
}

#[test]
fn simplified_expressions_share_the_arena() {
    // Simplification returns interned handles: simplifying two structurally
    // equal expressions yields the same node, and the simplified form of an
    // already-simplified expression is a cache hit with the same id.
    for seed in 1..=50u64 {
        let a = simplify(&random_expr(&mut Rng::new(seed), 4));
        let b = simplify(&random_expr(&mut Rng::new(seed), 4));
        assert_eq!(a, b, "seed {seed}");
        assert_eq!(a.id(), b.id(), "seed {seed}");
    }
}

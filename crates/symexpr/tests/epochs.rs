//! Arena epoch invariants: reclaim-then-reuse, memo invalidation across
//! resets, and the debug-build enforcement of the `ExprRef` ownership rule.
//!
//! Every test runs on its own thread (libtest default), so each one sees a
//! pristine thread-local arena.

use cp_symexpr::rewrite::{self, SimplifyOptions};
use cp_symexpr::{bytes, ArenaEpoch, BinOp, ExprArena, ExprBuild, SymExpr, Width};

#[test]
fn reclaim_then_reuse_rebuilds_nodes_and_support() {
    {
        let _epoch = ArenaEpoch::begin();
        let e = SymExpr::input_byte(3)
            .zext(Width::W32)
            .binop(BinOp::Add, SymExpr::input_byte(9).zext(Width::W32));
        assert_eq!(e.support().iter().collect::<Vec<_>>(), vec![3, 9]);
        assert!(ExprArena::node_count() >= 5);
    }
    assert_eq!(ExprArena::node_count(), 0, "epoch end must reclaim");

    // Re-interning after the reset rebuilds fresh nodes with fresh dense ids
    // and correct memoised metadata (the support bitset in particular).
    let again = SymExpr::input_byte(9)
        .zext(Width::W16)
        .binop(BinOp::Mul, SymExpr::constant(Width::W16, 4));
    assert_eq!(again.support().iter().collect::<Vec<_>>(), vec![9]);
    assert!(again.is_tainted());
    assert_eq!(again.width(), Width::W16);
}

#[test]
fn the_epoch_counter_advances_once_per_outermost_scope() {
    let start = ExprArena::epoch();
    {
        let _outer = ArenaEpoch::begin();
        let _inner = ArenaEpoch::begin();
        let _e = SymExpr::input_byte(1);
    }
    assert_eq!(ExprArena::epoch(), start + 1);
    ExprArena::reset();
    assert_eq!(ExprArena::epoch(), start + 2);
}

/// The regression the memo rekeying exists for: intern, simplify (seeding
/// the memo), reset, then intern a *different* expression whose root lands
/// on the same dense id.  An address- or id-keyed memo without an epoch
/// stamp would serve the old entry — here a handle into the reclaimed epoch.
#[test]
fn simplify_memo_cannot_serve_stale_hits_across_a_reset() {
    let opts = SimplifyOptions::default();

    // Epoch 1: ids 0..=2; the root (id 2) simplifies to `x` (id 0).
    let x = SymExpr::input_byte(1);
    let zero = SymExpr::constant(Width::W8, 0);
    let a = x.binop(BinOp::Add, zero);
    assert_eq!(a.id().index(), 2);
    assert_eq!(rewrite::simplify_with(&a, opts), x);
    assert!(rewrite::memo_len() > 0);

    ExprArena::reset();

    // Epoch 2: a different structure whose root also gets id 2.  A stale
    // memo hit would return epoch 1's `x` handle; the epoch-stamped memo
    // starts empty instead and simplification runs for real.
    let p = SymExpr::input_byte(2);
    let five = SymExpr::constant(Width::W8, 5);
    let b = p.binop(BinOp::Sub, five);
    assert_eq!(b.id().index(), 2, "test needs the id to collide");
    let simplified = rewrite::simplify_with(&b, opts);
    assert_eq!(simplified, b, "x - 5 has no rewrite");
    assert_eq!(simplified.support().iter().collect::<Vec<_>>(), vec![2]);
}

#[test]
fn decompose_memo_cannot_serve_stale_hits_across_a_reset() {
    // Epoch 1: id 0 is a 16-bit constant that decomposes into two bytes.
    let c = SymExpr::constant(Width::W16, 0xBEEF);
    assert_eq!(c.id().index(), 0);
    assert_eq!(bytes::decompose(&c).map(|v| v.len()), Some(2));

    ExprArena::reset();

    // Epoch 2: id 0 is now a single input byte.  A stale hit would report
    // the old two-byte constant decomposition.
    let byte = SymExpr::input_byte(7);
    assert_eq!(byte.id().index(), 0, "test needs the id to collide");
    let decomposed = bytes::decompose(&byte).expect("an input byte decomposes");
    assert_eq!(decomposed.len(), 1);
}

#[test]
fn the_simplify_memo_still_caches_within_an_epoch() {
    let e = SymExpr::input_byte(0)
        .zext(Width::W32)
        .binop(BinOp::And, SymExpr::constant(Width::W32, 0xFF));
    let first = rewrite::simplify(&e);
    let len = rewrite::memo_len();
    let second = rewrite::simplify(&e);
    assert_eq!(first, second);
    assert_eq!(rewrite::memo_len(), len, "repeat must be a pure cache hit");
}

#[cfg(debug_assertions)]
mod debug_enforcement {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn dereferencing_across_an_epoch_boundary_panics() {
        let stale = SymExpr::input_byte(1);
        ExprArena::reset();
        let result = catch_unwind(AssertUnwindSafe(|| stale.width()));
        assert!(result.is_err(), "stale deref must panic in debug builds");
    }

    #[test]
    fn dereferencing_on_a_foreign_thread_panics() {
        let here = SymExpr::input_byte(3);
        let crossed = std::thread::spawn(move || {
            // Give the worker its own arena identity, then misuse the
            // handle that crossed over.
            let _own = SymExpr::input_byte(4);
            catch_unwind(AssertUnwindSafe(|| here.width())).is_err()
        })
        .join()
        .expect("worker must not die outside the catch");
        assert!(crossed, "cross-thread deref must panic in debug builds");
    }

    #[test]
    fn dereferencing_on_a_thread_with_no_arena_panics() {
        let here = SymExpr::input_byte(5);
        let crossed =
            std::thread::spawn(move || catch_unwind(AssertUnwindSafe(|| here.id())).is_err())
                .join()
                .expect("worker must not die outside the catch");
        assert!(crossed, "a thread that never interned owns no handles");
    }
}

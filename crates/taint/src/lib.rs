//! # cp-taint
//!
//! Higher-level taint analyses built on the `cp-vm` [`Observer`] surface.
//!
//! The paper's donor analysis (Section 3.2) is an instrumentation pass that
//! watches an execution and records, in application-independent form, the
//! conditional branches the input influenced, where input bytes were read,
//! which statements completed (candidate insertion points) and which
//! allocations were performed.  [`TraceRecorder`] is that pass: an observer
//! that turns the VM's event stream into owned records which `cp-core`
//! packages into its `Trace` value.

use cp_lang::{FunctionDebug, Type};
use cp_symexpr::{ExprRef, Width};
use cp_vm::{BranchEvent, MachineState, Observer, StmtEndEvent, Value};
use std::collections::{HashMap, HashSet};

/// An owned record of one executed conditional branch.
#[derive(Debug, Clone)]
pub struct BranchRecord {
    /// Function index of the branch instruction.
    pub function: usize,
    /// Instruction index of the branch instruction.
    pub pc: usize,
    /// Invocation id of the executing frame.
    pub invocation: u64,
    /// Whether the branch was taken (condition was zero and control jumped).
    pub taken: bool,
    /// Concrete condition value.
    pub condition_value: u64,
    /// Width of the condition value.
    pub condition_width: Width,
    /// Symbolic condition, when it depends on input bytes.
    pub expr: Option<ExprRef>,
}

impl BranchRecord {
    /// Whether the condition depends on any input byte.
    pub fn is_tainted(&self) -> bool {
        self.expr.is_some()
    }

    /// Whether the condition depends on at least one of `offsets`.
    ///
    /// Untainted branches (no recorded expression) short-circuit to `false`;
    /// tainted ones probe the arena's memoised support bitset, so the query
    /// is O(|offsets|) instead of an O(tree) walk per branch.
    pub fn influenced_by(&self, offsets: &[usize]) -> bool {
        match &self.expr {
            Some(expr) => expr.support().contains_any(offsets),
            None => false,
        }
    }
}

/// An owned record of one `input_byte` read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputReadRecord {
    /// Byte offset within the input.
    pub offset: u64,
    /// Function performing the read.
    pub function: usize,
    /// Invocation id of the executing frame.
    pub invocation: u64,
}

/// An owned record of one heap allocation.
#[derive(Debug, Clone)]
pub struct AllocRecord {
    /// Base address of the allocation.
    pub base: u64,
    /// Requested size in bytes.
    pub size: u64,
    /// Symbolic expression of the size, when it depends on input bytes.
    pub size_expr: Option<ExprRef>,
    /// Number of conditional branches observed before this allocation —
    /// the prefix of the branch list that is the path to this site, which
    /// goal-directed discovery conjoins with the overflow goal.
    pub branches_before: usize,
}

impl AllocRecord {
    /// Whether the allocation size depends on input bytes — the sites the
    /// DIODE analysis targets.
    pub fn is_tainted(&self) -> bool {
        self.size_expr.is_some()
    }
}

/// An owned record of one function invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallRecord {
    /// Callee function index.
    pub function: usize,
    /// Invocation id assigned to the new frame.
    pub invocation: u64,
    /// Caller function index (`None` for the initial call of `main`).
    pub caller: Option<usize>,
}

/// An observer that records the full event stream of an instrumented run.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    /// Conditional branches in execution order.
    pub branches: Vec<BranchRecord>,
    /// Input-byte reads in execution order.
    pub input_reads: Vec<InputReadRecord>,
    /// Statement boundaries in execution order.
    pub stmt_ends: Vec<StmtEndEvent>,
    /// Heap allocations in execution order.
    pub allocs: Vec<AllocRecord>,
    /// Function invocations in execution order.
    pub calls: Vec<CallRecord>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for TraceRecorder {
    fn on_branch(&mut self, event: &BranchEvent, _state: &MachineState) {
        self.branches.push(BranchRecord {
            function: event.function,
            pc: event.pc,
            invocation: event.invocation,
            taken: event.taken,
            condition_value: event.condition.raw,
            condition_width: event.condition.width,
            expr: event.expr,
        });
    }

    fn on_input_read(&mut self, offset: u64, function: usize, invocation: u64) {
        self.input_reads.push(InputReadRecord {
            offset,
            function,
            invocation,
        });
    }

    fn on_stmt_end(&mut self, event: &StmtEndEvent, _state: &MachineState) {
        self.stmt_ends.push(*event);
    }

    fn on_alloc(
        &mut self,
        base: u64,
        size: &Value,
        size_expr: Option<&ExprRef>,
        _state: &MachineState,
    ) {
        self.allocs.push(AllocRecord {
            base,
            size: size.raw,
            size_expr: size_expr.cloned(),
            branches_before: self.branches.len(),
        });
    }

    fn on_call(&mut self, function: usize, invocation: u64, caller: Option<usize>) {
        self.calls.push(CallRecord {
            function,
            invocation,
            caller,
        });
    }
}

/// Per-basic-block execution counts derived from a recorded trace.
///
/// The bytecode backend attributes every statement to the basic block whose
/// body contains its `StmtEnd` marker ([`cp_lang::BlockDebug`]); since a
/// block is straight-line code, every statement of a block executes equally
/// often, so the visit count of any one statement *is* the block's execution
/// count.  The patch planner uses these frequencies to prefer an insertion
/// site executed once over one buried in a hot loop.
#[derive(Debug, Default, Clone)]
pub struct BlockProfile {
    /// `(function index, stmt id)` → number of recorded visits.
    stmt_visits: HashMap<(usize, usize), u64>,
    /// `(function index, stmt id)` → block id, from debug information.
    stmt_blocks: HashMap<(usize, usize), usize>,
    /// `(function index, block id)` → execution count.
    block_counts: HashMap<(usize, usize), u64>,
}

impl BlockProfile {
    /// Builds a profile from a run's statement-boundary events and the
    /// per-function-index debug records (`None` where debug info is absent).
    pub fn from_stmt_ends(
        stmt_ends: &[StmtEndEvent],
        functions: &[Option<FunctionDebug>],
    ) -> BlockProfile {
        let _span = cp_obs::span!("profile");
        {
            use std::sync::OnceLock;
            static STMT_ENDS: OnceLock<&'static cp_obs::metrics::Counter> = OnceLock::new();
            STMT_ENDS
                .get_or_init(|| cp_obs::metrics::counter("taint.stmt_ends"))
                .add(stmt_ends.len() as u64);
        }
        let mut profile = BlockProfile::default();
        for (index, debug) in functions.iter().enumerate() {
            let Some(debug) = debug else { continue };
            for (block, info) in debug.blocks.iter().enumerate() {
                for &stmt in &info.stmts {
                    profile.stmt_blocks.insert((index, stmt), block);
                }
            }
        }
        for event in stmt_ends {
            *profile
                .stmt_visits
                .entry((event.function, event.stmt))
                .or_insert(0) += 1;
        }
        for (&(function, stmt), &visits) in &profile.stmt_visits {
            if let Some(&block) = profile.stmt_blocks.get(&(function, stmt)) {
                let count = profile.block_counts.entry((function, block)).or_insert(0);
                *count = (*count).max(visits);
            }
        }
        profile
    }

    /// The block containing statement `stmt` of function `function`, if the
    /// backend recorded block information.
    pub fn block_of(&self, function: usize, stmt: usize) -> Option<usize> {
        self.stmt_blocks.get(&(function, stmt)).copied()
    }

    /// Execution count of a block.
    pub fn block_count(&self, function: usize, block: usize) -> u64 {
        self.block_counts
            .get(&(function, block))
            .copied()
            .unwrap_or(0)
    }

    /// How often the candidate site "after statement `stmt`" would execute:
    /// its block's execution count, falling back to the raw statement visit
    /// count when no block information is available.
    pub fn site_frequency(&self, function: usize, stmt: usize) -> u64 {
        match self.block_of(function, stmt) {
            Some(block) => self.block_count(function, block),
            None => self
                .stmt_visits
                .get(&(function, stmt))
                .copied()
                .unwrap_or(0),
        }
    }
}

/// An owned record of a scalar variable's tainted value at a statement
/// boundary: the recipient-side namespace the paper's translation targets
/// ("the debug information gives the variables in scope", Section 3.3).
#[derive(Debug, Clone)]
pub struct VarValueRecord {
    /// Function index of the statement.
    pub function: usize,
    /// Invocation id of the executing frame — distinguishes the value
    /// timelines of separate calls (and lets consumers reason per call
    /// rather than conflating every execution of a statement site).
    pub invocation: u64,
    /// Statement (program point) id after which the value was observed.
    pub stmt: usize,
    /// Source-level variable name (from debug info).
    pub name: String,
    /// Width of the variable's scalar type.
    pub width: Width,
    /// Symbolic expression of the value the variable held.
    pub expr: ExprRef,
}

/// An observer that records, at every statement boundary, the symbolic
/// shadows of the scalar variables in scope.
///
/// Driven by debug information (so it naturally records nothing for stripped
/// donors): for each statement-end event it walks the executing function's
/// variables declared at or before that statement, loads their shadow from
/// the frame and keeps every tainted value it has not seen at that site
/// before.  Distinct values of the same variable (loop-carried updates) are
/// all recorded; identical re-observations are deduplicated through the
/// arena's pointer equality, so tight loops cost one hash probe per
/// variable per statement.
#[derive(Debug, Default)]
pub struct ScopeRecorder {
    /// Debug records by function index (`None` where debug info is absent).
    functions: Vec<Option<FunctionDebug>>,
    /// Recorded variable values in observation order.
    pub var_values: Vec<VarValueRecord>,
    /// Deduplication: (function, frame offset, value expression).
    seen: HashSet<(usize, usize, ExprRef)>,
    /// Executions observed per statement site, to apply
    /// [`MAX_VISITS_PER_STMT`](Self::MAX_VISITS_PER_STMT).
    visits: HashMap<(usize, usize), u32>,
}

impl ScopeRecorder {
    /// Scope capture stops after this many executions of the same statement
    /// site.  Parse-stage variable values — the material translation binds
    /// fields to — appear in a statement's first executions; without the cap
    /// a hot loop would pay a shadow reconstruction per in-scope variable on
    /// every iteration (measured at +58% on the 10k-branch recording bench),
    /// for loop-carried values of rapidly diminishing relevance.
    pub const MAX_VISITS_PER_STMT: u32 = 4;

    /// Creates a recorder from per-function-index debug records.
    pub fn new(functions: Vec<Option<FunctionDebug>>) -> Self {
        ScopeRecorder {
            functions,
            ..Self::default()
        }
    }

    /// The width of a scalar type; `None` for pointers and structs (whose
    /// values are addresses or aggregates, not translation material).
    fn scalar_width(ty: &Type) -> Option<Width> {
        match ty {
            Type::U8 | Type::I8 => Some(Width::W8),
            Type::U16 | Type::I16 => Some(Width::W16),
            Type::U32 | Type::I32 => Some(Width::W32),
            Type::U64 | Type::I64 => Some(Width::W64),
            Type::Ptr(_) | Type::Struct(_) => None,
        }
    }
}

impl Observer for ScopeRecorder {
    fn on_stmt_end(&mut self, event: &StmtEndEvent, state: &MachineState) {
        let Some(Some(debug)) = self.functions.get(event.function) else {
            return;
        };
        let visits = self.visits.entry((event.function, event.stmt)).or_insert(0);
        if *visits >= Self::MAX_VISITS_PER_STMT {
            return;
        }
        *visits += 1;
        let Some(frame) = state.frames.last() else {
            return;
        };
        for var in debug.vars_in_scope_after(event.stmt) {
            let Some(width) = Self::scalar_width(&var.ty) else {
                continue;
            };
            let addr = frame.frame_base + var.frame_offset as u64;
            let Some(expr) = state.load_shadow(addr, width) else {
                continue;
            };
            if !expr.is_tainted() {
                continue;
            }
            if self.seen.insert((event.function, var.frame_offset, expr)) {
                self.var_values.push(VarValueRecord {
                    function: event.function,
                    invocation: event.invocation,
                    stmt: event.stmt,
                    name: var.name.clone(),
                    width,
                    expr,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_bytecode::compile;
    use cp_lang::frontend;
    use cp_vm::{run_with_observer, RunConfig};

    fn record(source: &str, input: &[u8]) -> TraceRecorder {
        let program = compile(&frontend(source).unwrap()).unwrap();
        let mut recorder = TraceRecorder::new();
        run_with_observer(&program, input, &RunConfig::default(), &mut recorder);
        recorder
    }

    #[test]
    fn records_branches_reads_statements_and_calls() {
        let recorder = record(
            r#"
            fn main() -> u32 {
                var b: u32 = input_byte(0) as u32;
                if (b < 10) { return 1; }
                return 0;
            }
            "#,
            &[5],
        );
        assert_eq!(recorder.branches.len(), 1);
        assert!(recorder.branches[0].is_tainted());
        assert_eq!(recorder.input_reads.len(), 1);
        assert_eq!(recorder.input_reads[0].offset, 0);
        assert!(!recorder.stmt_ends.is_empty());
        assert_eq!(recorder.calls.len(), 1);
        assert_eq!(recorder.calls[0].caller, None);
    }

    #[test]
    fn influenced_by_filters_on_support() {
        let recorder = record(
            r#"
            fn main() -> u32 {
                var a: u32 = input_byte(0) as u32;
                var b: u32 = input_byte(5) as u32;
                if (a < 10) { output(1); }
                if (b < 10) { output(2); }
                return 0;
            }
            "#,
            &[1, 0, 0, 0, 0, 2],
        );
        let on_zero: Vec<_> = recorder
            .branches
            .iter()
            .filter(|b| b.influenced_by(&[0]))
            .collect();
        assert_eq!(on_zero.len(), 1);
        let on_five: Vec<_> = recorder
            .branches
            .iter()
            .filter(|b| b.influenced_by(&[5]))
            .collect();
        assert_eq!(on_five.len(), 1);
        assert_ne!(on_zero[0].pc, on_five[0].pc);
    }

    #[test]
    fn scope_recorder_captures_tainted_variable_values() {
        let program = compile(
            &frontend(
                r#"
                fn main() -> u32 {
                    var w: u32 = ((input_byte(0) as u32) << 8) | (input_byte(1) as u32);
                    var untainted: u32 = 7;
                    var wider: u64 = w as u64;
                    return 0;
                }
                "#,
            )
            .unwrap(),
        )
        .unwrap();
        let debug = program.debug.clone().expect("unstripped");
        let functions = program
            .functions
            .iter()
            .map(|f| {
                f.name
                    .as_deref()
                    .and_then(|name| debug.functions.get(name).cloned())
            })
            .collect();
        let mut scopes = ScopeRecorder::new(functions);
        run_with_observer(&program, &[0x12, 0x34], &RunConfig::default(), &mut scopes);
        let names: Vec<&str> = scopes.var_values.iter().map(|v| v.name.as_str()).collect();
        assert!(names.contains(&"w"), "recorded: {names:?}");
        assert!(names.contains(&"wider"), "recorded: {names:?}");
        assert!(!names.contains(&"untainted"), "recorded: {names:?}");
        let w = scopes.var_values.iter().find(|v| v.name == "w").unwrap();
        assert_eq!(w.width, Width::W32);
        assert_eq!(cp_symexpr::eval::eval(&w.expr, &[0x12u8, 0x34][..]), 0x1234);
    }

    #[test]
    fn scope_recorder_is_inert_without_debug_info() {
        let program = compile(
            &frontend(
                r#"
                fn main() -> u32 {
                    var w: u32 = input_byte(0) as u32;
                    return w;
                }
                "#,
            )
            .unwrap(),
        )
        .unwrap()
        .strip();
        let mut scopes = ScopeRecorder::new(vec![None; program.functions.len()]);
        run_with_observer(&program, &[9], &RunConfig::default(), &mut scopes);
        assert!(scopes.var_values.is_empty());
    }

    #[test]
    fn alloc_records_carry_their_path_position() {
        let recorder = record(
            r#"
            fn main() -> u32 {
                var early: u64 = malloc(8);
                var b: u32 = input_byte(0) as u32;
                if (b < 10) { output(1); }
                var late: u64 = malloc((b * 2) as u64);
                return 0;
            }
            "#,
            &[3],
        );
        assert_eq!(recorder.allocs.len(), 2);
        assert_eq!(recorder.allocs[0].branches_before, 0);
        assert_eq!(recorder.allocs[1].branches_before, 1);
    }

    #[test]
    fn block_profile_counts_loop_blocks() {
        let program = compile(
            &frontend(
                r#"
                fn main() -> u32 {
                    var i: u32 = 0;
                    while (i < 5) { i = i + 1; }
                    output(i as u64);
                    return i;
                }
                "#,
            )
            .unwrap(),
        )
        .unwrap();
        let mut recorder = TraceRecorder::new();
        run_with_observer(&program, &[], &RunConfig::default(), &mut recorder);
        let debug = program.debug.clone().expect("unstripped");
        let functions: Vec<Option<FunctionDebug>> = program
            .functions
            .iter()
            .map(|f| {
                f.name
                    .as_deref()
                    .and_then(|name| debug.functions.get(name).cloned())
            })
            .collect();
        let profile = BlockProfile::from_stmt_ends(&recorder.stmt_ends, &functions);
        // The loop-body assignment (stmt 2) runs five times; the post-loop
        // output (stmt 3) runs once, in a different block.
        assert_eq!(profile.site_frequency(0, 2), 5);
        assert_eq!(profile.site_frequency(0, 3), 1);
        assert_ne!(profile.block_of(0, 2), profile.block_of(0, 3));
        assert!(profile.block_of(0, 2).is_some());
    }

    #[test]
    fn records_tainted_allocation_sites() {
        let recorder = record(
            r#"
            fn main() -> u32 {
                var fixed: u64 = malloc(16);
                var n: u64 = (input_byte(0) as u64) * 4;
                var sized: u64 = malloc(n);
                return 0;
            }
            "#,
            &[3],
        );
        assert_eq!(recorder.allocs.len(), 2);
        assert!(!recorder.allocs[0].is_tainted());
        assert!(recorder.allocs[1].is_tainted());
        assert_eq!(recorder.allocs[1].size, 12);
    }
}

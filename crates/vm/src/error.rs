//! Runtime errors detected by the VM.

use std::fmt;

/// An error detected while executing a program.
///
/// The first three variants correspond to the three error classes of the
/// paper's evaluation (out-of-bounds access, divide-by-zero, integer overflow
/// at an allocation site).  The remainder are resource/robustness faults of
/// the VM itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A heap access outside every live allocation.
    OutOfBounds {
        /// The faulting address.
        addr: u64,
        /// Number of bytes accessed.
        len: usize,
        /// Whether the access was a write.
        write: bool,
    },
    /// Division or remainder by zero.
    DivideByZero {
        /// Function index of the faulting instruction.
        function: usize,
        /// Instruction index of the faulting instruction.
        pc: usize,
    },
    /// An arithmetic overflow flowed into the size argument of an allocation.
    ///
    /// This is the property the DIODE error-discovery tool targets; the VM
    /// reports it at the `malloc` call with the (wrapped) requested size.
    OverflowIntoAllocation {
        /// The wrapped size passed to the allocator.
        requested: u64,
    },
    /// An access to an address outside every mapped segment.
    UnmappedAccess {
        /// The faulting address.
        addr: u64,
        /// Whether the access was a write.
        write: bool,
    },
    /// The stack segment was exhausted.
    StackOverflow,
    /// The configured step budget was exhausted.
    StepLimitExceeded,
    /// The configured call-depth budget was exhausted.
    CallDepthExceeded,
    /// The requested allocation exceeds the configured maximum.
    AllocationTooLarge {
        /// Requested size in bytes.
        requested: u64,
    },
    /// Malformed bytecode (operand-stack underflow, bad function index, …).
    InvalidBytecode(String),
}

impl VmError {
    /// Whether this error is one of the three application error classes the
    /// paper's evaluation targets (as opposed to a VM resource fault).
    pub fn is_application_error(&self) -> bool {
        matches!(
            self,
            VmError::OutOfBounds { .. }
                | VmError::DivideByZero { .. }
                | VmError::OverflowIntoAllocation { .. }
                | VmError::UnmappedAccess { .. }
        )
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfBounds { addr, len, write } => write!(
                f,
                "out-of-bounds {} of {} byte(s) at {addr:#x}",
                if *write { "write" } else { "read" },
                len
            ),
            VmError::DivideByZero { function, pc } => {
                write!(f, "divide by zero in function {function} at pc {pc}")
            }
            VmError::OverflowIntoAllocation { requested } => write!(
                f,
                "integer overflow flowed into allocation size ({requested} bytes requested)"
            ),
            VmError::UnmappedAccess { addr, write } => write!(
                f,
                "{} of unmapped address {addr:#x}",
                if *write { "write" } else { "read" }
            ),
            VmError::StackOverflow => write!(f, "stack overflow"),
            VmError::StepLimitExceeded => write!(f, "step limit exceeded"),
            VmError::CallDepthExceeded => write!(f, "call depth exceeded"),
            VmError::AllocationTooLarge { requested } => {
                write!(
                    f,
                    "allocation of {requested} bytes exceeds the configured maximum"
                )
            }
            VmError::InvalidBytecode(message) => write!(f, "invalid bytecode: {message}"),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn application_error_classification() {
        assert!(VmError::OutOfBounds {
            addr: 0,
            len: 1,
            write: true
        }
        .is_application_error());
        assert!(VmError::DivideByZero { function: 0, pc: 0 }.is_application_error());
        assert!(VmError::OverflowIntoAllocation { requested: 16 }.is_application_error());
        assert!(!VmError::StepLimitExceeded.is_application_error());
        assert!(!VmError::StackOverflow.is_application_error());
    }

    #[test]
    fn display_is_informative() {
        let e = VmError::OutOfBounds {
            addr: 0x1000_0040,
            len: 4,
            write: true,
        };
        assert!(e.to_string().contains("out-of-bounds write"));
    }
}

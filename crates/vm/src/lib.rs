//! # cp-vm
//!
//! The instrumented virtual machine that executes compiled Phage-C programs.
//!
//! In the paper, Code Phage observes donor and recipient executions through a
//! fine-grained dynamic taint analysis built on Valgrind (Section 3.2): every
//! input byte gets a unique label, arithmetic / data-movement / logic
//! instructions propagate labels, and additional instrumentation reconstructs
//! the full symbolic expression of each computed value.  This VM provides the
//! same observation surface for Phage-C bytecode:
//!
//! * **byte-level taint and symbolic shadow state** — every operand-stack slot
//!   and every stored memory word carries an optional [`cp_symexpr::SymExpr`]
//!   recording how it was computed from input bytes,
//! * **conditional-branch events** with the branch direction and the symbolic
//!   condition (the raw material for candidate-check discovery),
//! * **input-read, allocation, call/return and statement-boundary events**
//!   via the [`Observer`] trait,
//! * **error detectors** for the paper's three error classes: out-of-bounds
//!   heap accesses, divide-by-zero, and integer overflow flowing into an
//!   allocation size (the property DIODE targets), and
//! * a uniform address space (globals / stack frames / heap) so that the
//!   recipient-side data-structure traversal can walk memory from debug-info
//!   roots.

pub mod error;
pub mod observer;
pub mod state;
pub mod vm;

pub use error::VmError;
pub use observer::{BranchEvent, NullObserver, Observer, StmtEndEvent};
pub use state::{Allocation, MachineState, Snapshot, Value};
pub use vm::{run, run_with_observer, RunConfig, RunResult, Termination, Vm};

/// Base address of the global data segment.
pub const GLOBAL_BASE: u64 = 0x1000;
/// Base address of the stack segment (frames grow upward from here).
pub const STACK_BASE: u64 = 0x0010_0000;
/// Size of the stack segment in bytes.
pub const STACK_SIZE: u64 = 0x0010_0000;
/// Base address of the heap segment.
pub const HEAP_BASE: u64 = 0x1000_0000;
/// Guard gap left between heap allocations so small overruns land in unmapped
/// space and are detected.
pub const HEAP_GUARD: u64 = 64;

#[cfg(test)]
mod tests {
    use super::*;
    use cp_bytecode::compile;
    use cp_lang::frontend;

    fn run_source(source: &str, input: &[u8]) -> RunResult {
        let program = compile(&frontend(source).unwrap()).unwrap();
        run(&program, input, &RunConfig::default())
    }

    #[test]
    fn end_to_end_arithmetic() {
        let result = run_source("fn main() -> u32 { return 6 * 7; }", &[]);
        assert_eq!(result.termination, Termination::Returned(42));
    }

    #[test]
    fn end_to_end_input_parsing() {
        let result = run_source(
            r#"
            fn main() -> u32 {
                var width: u16 = ((input_byte(0) as u16) << 8) | (input_byte(1) as u16);
                output(width as u64);
                return width as u32;
            }
        "#,
            &[0x12, 0x34],
        );
        assert_eq!(result.termination, Termination::Returned(0x1234));
        assert_eq!(result.outputs, vec![0x1234]);
    }
}

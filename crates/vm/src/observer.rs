//! Execution observers.
//!
//! The VM reports the events Code Phage's instrumentation consumes — the same
//! observation points the paper lists for its Valgrind-based analysis:
//! conditional branches (with the symbolic condition), input-byte reads,
//! allocations, call/return boundaries and statement boundaries (the candidate
//! insertion points).  Higher-level analyses (branch tracing, field-read
//! tracking, insertion-point probing) live in `cp-taint` and are implemented
//! as observers.

use crate::state::{MachineState, Value};
use cp_symexpr::ExprRef;

/// A conditional-branch execution event.
#[derive(Debug, Clone)]
pub struct BranchEvent {
    /// Function index of the branch instruction.
    pub function: usize,
    /// Instruction index of the branch instruction.
    pub pc: usize,
    /// Invocation id of the executing frame.
    pub invocation: u64,
    /// Whether the branch was taken (the condition was zero and control jumped
    /// to the target).
    pub taken: bool,
    /// Concrete condition value.
    pub condition: Value,
    /// Symbolic condition, when the value depends on input bytes.
    pub expr: Option<ExprRef>,
}

/// A statement-boundary event: statement `stmt` of `function` just completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmtEndEvent {
    /// Function index.
    pub function: usize,
    /// Invocation id of the executing frame.
    pub invocation: u64,
    /// Statement (program point) id within the function.
    pub stmt: usize,
}

/// Observer of VM execution events.
///
/// All methods have empty default implementations, so observers only implement
/// what they need.
#[allow(unused_variables)]
pub trait Observer {
    /// A conditional branch executed.
    fn on_branch(&mut self, event: &BranchEvent, state: &MachineState) {}

    /// An input byte was read through the `input_byte` intrinsic.
    fn on_input_read(&mut self, offset: u64, function: usize, invocation: u64) {}

    /// A simple statement finished executing.
    fn on_stmt_end(&mut self, event: &StmtEndEvent, state: &MachineState) {}

    /// A heap allocation was performed.
    fn on_alloc(
        &mut self,
        base: u64,
        size: &Value,
        size_expr: Option<&ExprRef>,
        state: &MachineState,
    ) {
    }

    /// A function was entered.
    fn on_call(&mut self, function: usize, invocation: u64, caller: Option<usize>) {}

    /// A function returned.
    fn on_return(&mut self, function: usize, invocation: u64) {}
}

/// An observer that ignores every event (used for plain, uninstrumented runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_accepts_events() {
        let mut observer = NullObserver;
        let state = MachineState::new(0);
        observer.on_input_read(3, 0, 0);
        observer.on_call(1, 2, Some(0));
        observer.on_return(1, 2);
        observer.on_stmt_end(
            &StmtEndEvent {
                function: 0,
                invocation: 0,
                stmt: 1,
            },
            &state,
        );
    }
}

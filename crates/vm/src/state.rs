//! Machine state: memory segments, shadow (symbolic) state, frames and heap.

use crate::error::VmError;
use crate::{GLOBAL_BASE, HEAP_BASE, HEAP_GUARD, STACK_BASE, STACK_SIZE};
use cp_symexpr::bytes::{recompose, ByteVal};
use cp_symexpr::{BinOp, ExprBuild, ExprRef, SymExpr, Width};
use std::collections::HashMap;

/// A concrete runtime value on the operand stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Value {
    /// The raw bits, truncated to `width`.
    pub raw: u64,
    /// Nominal width of the value.
    pub width: Width,
    /// Sticky flag: the value was produced by (or derived from) an arithmetic
    /// operation that wrapped.  The allocator checks this flag to detect the
    /// paper's "integer overflow at a memory allocation site" errors.
    pub overflowed: bool,
}

impl Value {
    /// Creates a value without the overflow flag.
    pub fn new(width: Width, raw: u64) -> Self {
        Value {
            raw: width.truncate(raw),
            width,
            overflowed: false,
        }
    }

    /// Creates a value with an explicit overflow flag.
    pub fn with_overflow(width: Width, raw: u64, overflowed: bool) -> Self {
        Value {
            raw: width.truncate(raw),
            width,
            overflowed,
        }
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.raw == 0
    }
}

/// One live heap allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Base address.
    pub base: u64,
    /// Size in bytes actually granted to the program.
    pub size: u64,
}

impl Allocation {
    /// Whether the range `[addr, addr + len)` lies entirely inside the
    /// allocation.
    pub fn contains_range(&self, addr: u64, len: usize) -> bool {
        addr >= self.base && addr.saturating_add(len as u64) <= self.base + self.size
    }
}

/// One activation record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Index of the executing function.
    pub function: usize,
    /// Unique invocation id (monotonically increasing across the run).
    pub invocation: u64,
    /// Base address of the frame within the stack segment.
    pub frame_base: u64,
    /// Saved program counter of the caller (the instruction to resume after
    /// the call instruction).
    pub return_pc: usize,
    /// Height of the operand stack when the frame was entered (used to detect
    /// malformed bytecode on return).
    pub operand_base: usize,
}

/// A snapshot of the memory-visible machine state, taken at a program point.
///
/// Code Phage's insertion analysis (paper Section 3.3) needs, at each candidate
/// insertion point, the values and symbolic expressions reachable from the
/// variables in scope; the snapshot captures exactly the state that traversal
/// reads: concrete memory, the symbolic shadow of stored values, the live heap
/// allocations and the base address of the current frame.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Concrete contents of every written address.
    pub memory: HashMap<u64, u8>,
    /// Symbolic shadow of stored values, keyed by start address.
    pub shadow: HashMap<u64, (Width, ExprRef)>,
    /// Live heap allocations.
    pub allocations: Vec<Allocation>,
    /// Frame base address of the function executing when the snapshot was
    /// taken.
    pub frame_base: u64,
    /// Base address of the global segment.
    pub globals_base: u64,
    /// Size of the global segment in bytes.
    pub globals_size: usize,
}

impl Snapshot {
    /// Reads a little-endian value of the given width, if every byte has been
    /// written.
    pub fn load(&self, addr: u64, width: Width) -> Option<u64> {
        let mut value: u64 = 0;
        for i in 0..width.bytes() {
            let byte = *self.memory.get(&(addr + i as u64))?;
            value |= (byte as u64) << (8 * i);
        }
        Some(value)
    }

    /// The symbolic expression recorded for the value stored at `addr`, if
    /// any.
    pub fn shadow_at(&self, addr: u64) -> Option<&(Width, ExprRef)> {
        self.shadow.get(&addr)
    }

    /// Whether `addr` points into a live allocation, the stack or the globals.
    pub fn is_mapped(&self, addr: u64) -> bool {
        if (GLOBAL_BASE..GLOBAL_BASE + self.globals_size as u64).contains(&addr)
            || (STACK_BASE..STACK_BASE + STACK_SIZE).contains(&addr)
        {
            return true;
        }
        self.allocations.iter().any(|a| a.contains_range(addr, 1))
    }
}

/// The complete mutable state of a running VM.
#[derive(Debug, Clone)]
pub struct MachineState {
    /// Sparse byte memory covering all segments.
    pub memory: HashMap<u64, u8>,
    /// Symbolic shadow of stored values, keyed by start address.
    pub shadow: HashMap<u64, (Width, ExprRef)>,
    /// Addresses holding values whose computation overflowed.
    pub overflowed_addrs: std::collections::HashSet<u64>,
    /// Live heap allocations, sorted by base address.
    pub allocations: Vec<Allocation>,
    /// Next free heap address.
    pub heap_top: u64,
    /// Next free stack address.
    pub stack_top: u64,
    /// Call stack.
    pub frames: Vec<Frame>,
    /// Operand stack (concrete values).
    pub operands: Vec<Value>,
    /// Operand stack (symbolic shadows, parallel to `operands`).
    pub operand_shadow: Vec<Option<ExprRef>>,
    /// Values passed to the `output` intrinsic, in order.
    pub outputs: Vec<u64>,
    /// Executed instruction count.
    pub steps: u64,
    /// Monotonic counter used to assign invocation ids.
    pub next_invocation: u64,
    /// Size of the global segment.
    pub globals_size: usize,
}

impl MachineState {
    /// Creates a fresh machine state for a program with the given global
    /// segment size.
    pub fn new(globals_size: usize) -> Self {
        MachineState {
            memory: HashMap::new(),
            shadow: HashMap::new(),
            overflowed_addrs: std::collections::HashSet::new(),
            allocations: Vec::new(),
            heap_top: HEAP_BASE,
            stack_top: STACK_BASE,
            frames: Vec::new(),
            operands: Vec::new(),
            operand_shadow: Vec::new(),
            outputs: Vec::new(),
            steps: 0,
            next_invocation: 0,
            globals_size,
        }
    }

    /// The base address of the global segment.
    pub fn globals_base(&self) -> u64 {
        GLOBAL_BASE
    }

    /// The currently executing frame.
    ///
    /// # Panics
    ///
    /// Panics if no frame is active.
    pub fn current_frame(&self) -> &Frame {
        self.frames.last().expect("no active frame")
    }

    /// Classifies an address and checks that an access of `len` bytes is
    /// valid.
    fn check_access(&self, addr: u64, len: usize, write: bool) -> Result<(), VmError> {
        let end = addr.saturating_add(len as u64);
        if addr >= GLOBAL_BASE && end <= GLOBAL_BASE + self.globals_size as u64 {
            return Ok(());
        }
        if addr >= STACK_BASE && end <= STACK_BASE + STACK_SIZE {
            return Ok(());
        }
        if addr >= HEAP_BASE {
            if self.allocations.iter().any(|a| a.contains_range(addr, len)) {
                return Ok(());
            }
            return Err(VmError::OutOfBounds { addr, len, write });
        }
        Err(VmError::UnmappedAccess { addr, write })
    }

    /// Stores a little-endian value.
    ///
    /// # Errors
    ///
    /// Returns the out-of-bounds / unmapped error for invalid addresses.
    pub fn store(&mut self, addr: u64, width: Width, value: u64) -> Result<(), VmError> {
        self.check_access(addr, width.bytes(), true)?;
        for i in 0..width.bytes() {
            self.memory
                .insert(addr + i as u64, ((value >> (8 * i)) & 0xFF) as u8);
        }
        Ok(())
    }

    /// Loads a little-endian value (unwritten bytes read as zero).
    ///
    /// # Errors
    ///
    /// Returns the out-of-bounds / unmapped error for invalid addresses.
    pub fn load(&mut self, addr: u64, width: Width) -> Result<u64, VmError> {
        self.check_access(addr, width.bytes(), false)?;
        let mut value: u64 = 0;
        for i in 0..width.bytes() {
            let byte = self.memory.get(&(addr + i as u64)).copied().unwrap_or(0);
            value |= (byte as u64) << (8 * i);
        }
        Ok(value)
    }

    /// Records the symbolic shadow of a stored value (or clears it).
    ///
    /// Every shadow entry overlapping `[addr, addr + width)` is invalidated
    /// first: a store overwrites those bytes, so a wider entry recorded
    /// earlier would otherwise keep describing memory that no longer holds
    /// its value.  Bytes of an invalidated entry that the store does *not*
    /// overwrite keep their taint as byte-wide entries, so partial aliased
    /// overwrites neither leave stale expressions nor drop taint.  This
    /// maintains the invariant that at most one entry covers any byte, which
    /// [`MachineState::load_shadow`] relies on.
    pub fn set_shadow(&mut self, addr: u64, width: Width, expr: Option<ExprRef>) {
        let end = addr + width.bytes() as u64;
        // Entries start at most 7 bytes before `addr` (the widest value is 8
        // bytes), and any entry starting inside the range overlaps.
        let mut evicted: Vec<(u64, Width, ExprRef)> = Vec::new();
        for start in addr.saturating_sub(7)..end {
            if start >= addr {
                if let Some((w, e)) = self.shadow.remove(&start) {
                    evicted.push((start, w, e));
                }
                continue;
            }
            if let Some((w, _)) = self.shadow.get(&start) {
                if start + w.bytes() as u64 > addr {
                    let (w, e) = self.shadow.remove(&start).expect("entry just probed");
                    evicted.push((start, w, e));
                }
            }
        }
        // Re-shadow the surviving bytes of evicted entries, byte by byte.
        for (start, w, e) in evicted {
            for offset in 0..w.bytes() as u64 {
                let byte_addr = start + offset;
                if (addr..end).contains(&byte_addr) {
                    continue;
                }
                let byte = if offset == 0 {
                    e
                } else {
                    e.binop(BinOp::ShrU, SymExpr::constant(w, 8 * offset))
                };
                self.shadow
                    .insert(byte_addr, (Width::W8, byte.truncate(Width::W8)));
            }
        }
        if let Some(expr) = expr {
            self.shadow.insert(addr, (width, expr));
        }
    }

    /// The symbolic shadow recorded at `addr`, if any.
    pub fn shadow_at(&self, addr: u64) -> Option<&(Width, ExprRef)> {
        self.shadow.get(&addr)
    }

    /// The 8-bit symbolic expression describing the single byte at `addr`,
    /// extracted from whichever shadow entry covers it.
    fn shadow_byte(&self, addr: u64) -> Option<ExprRef> {
        for start in addr.saturating_sub(7)..=addr {
            let Some((width, expr)) = self.shadow.get(&start) else {
                continue;
            };
            if start + width.bytes() as u64 <= addr {
                continue;
            }
            let offset = addr - start;
            let byte = if offset == 0 {
                *expr
            } else {
                expr.binop(BinOp::ShrU, SymExpr::constant(*width, 8 * offset))
            };
            return Some(byte.truncate(Width::W8));
        }
        None
    }

    /// The symbolic shadow of a `width`-byte load at `addr`, reconstructed
    /// byte-accurately.
    ///
    /// A load that exactly matches a recorded store reuses its expression;
    /// otherwise the result is recomposed from the per-byte shadows of every
    /// covering entry, with untainted bytes contributed as the constants
    /// currently in memory.  Returns `None` when no loaded byte is tainted.
    pub fn load_shadow(&self, addr: u64, width: Width) -> Option<ExprRef> {
        if let Some((w, expr)) = self.shadow.get(&addr) {
            if *w == width {
                return Some(*expr);
            }
        }
        let mut bytes = Vec::with_capacity(width.bytes());
        let mut tainted = false;
        for i in 0..width.bytes() {
            let byte_addr = addr + i as u64;
            match self.shadow_byte(byte_addr) {
                Some(expr) => {
                    tainted = true;
                    bytes.push(ByteVal::Sym(expr));
                }
                None => {
                    let concrete = self.memory.get(&byte_addr).copied().unwrap_or(0);
                    bytes.push(ByteVal::Known(concrete));
                }
            }
        }
        if tainted {
            Some(recompose(&bytes, width))
        } else {
            None
        }
    }

    /// Marks or clears the overflow flag for a stored value.
    pub fn set_overflowed(&mut self, addr: u64, width: Width, overflowed: bool) {
        for i in 0..width.bytes() {
            if overflowed {
                self.overflowed_addrs.insert(addr + i as u64);
            } else {
                self.overflowed_addrs.remove(&(addr + i as u64));
            }
        }
    }

    /// Whether any byte of `[addr, addr+width)` holds an overflowed value.
    pub fn is_overflowed(&self, addr: u64, width: Width) -> bool {
        (0..width.bytes()).any(|i| self.overflowed_addrs.contains(&(addr + i as u64)))
    }

    /// Performs a heap allocation of `size` bytes and returns its base
    /// address.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::AllocationTooLarge`] when `size` exceeds `max_size`.
    pub fn allocate(&mut self, size: u64, max_size: u64) -> Result<u64, VmError> {
        if size > max_size {
            return Err(VmError::AllocationTooLarge { requested: size });
        }
        let base = self.heap_top;
        self.heap_top = self
            .heap_top
            .saturating_add(size.max(1))
            .saturating_add(HEAP_GUARD);
        self.allocations.push(Allocation { base, size });
        Ok(base)
    }

    /// Pushes a frame for `function` and returns its base address.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::StackOverflow`] if the stack segment is exhausted.
    pub fn push_frame(
        &mut self,
        function: usize,
        frame_size: usize,
        return_pc: usize,
    ) -> Result<&Frame, VmError> {
        if self.stack_top + frame_size as u64 > STACK_BASE + STACK_SIZE {
            return Err(VmError::StackOverflow);
        }
        let frame_base = self.stack_top;
        self.stack_top += frame_size as u64;
        let invocation = self.next_invocation;
        self.next_invocation += 1;
        self.frames.push(Frame {
            function,
            invocation,
            frame_base,
            return_pc,
            operand_base: self.operands.len(),
        });
        Ok(self.frames.last().expect("frame just pushed"))
    }

    /// Pops the current frame, releasing its stack space.
    pub fn pop_frame(&mut self) -> Option<Frame> {
        let frame = self.frames.pop()?;
        self.stack_top = frame.frame_base;
        Some(frame)
    }

    /// Takes a snapshot of the memory-visible state for insertion-point
    /// analysis.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            memory: self.memory.clone(),
            shadow: self.shadow.clone(),
            allocations: self.allocations.clone(),
            frame_base: self
                .frames
                .last()
                .map(|f| f.frame_base)
                .unwrap_or(STACK_BASE),
            globals_base: GLOBAL_BASE,
            globals_size: self.globals_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_symexpr::SymExpr;

    #[test]
    fn store_and_load_round_trip_little_endian() {
        let mut state = MachineState::new(16);
        state.store(GLOBAL_BASE, Width::W32, 0xAABBCCDD).unwrap();
        assert_eq!(state.load(GLOBAL_BASE, Width::W32).unwrap(), 0xAABBCCDD);
        assert_eq!(state.load(GLOBAL_BASE, Width::W8).unwrap(), 0xDD);
        assert_eq!(state.load(GLOBAL_BASE + 3, Width::W8).unwrap(), 0xAA);
    }

    #[test]
    fn global_access_outside_segment_is_unmapped() {
        let mut state = MachineState::new(4);
        assert!(state.store(GLOBAL_BASE + 8, Width::W8, 1).is_err());
        assert!(state.store(0, Width::W8, 1).is_err());
    }

    #[test]
    fn heap_bounds_are_enforced() {
        let mut state = MachineState::new(0);
        let base = state.allocate(8, u64::MAX).unwrap();
        state.store(base, Width::W64, 42).unwrap();
        let err = state.store(base + 8, Width::W8, 1).unwrap_err();
        assert!(matches!(err, VmError::OutOfBounds { .. }));
        let err = state.load(base + 9, Width::W8).unwrap_err();
        assert!(matches!(err, VmError::OutOfBounds { write: false, .. }));
    }

    #[test]
    fn allocations_are_separated_by_guard_gaps() {
        let mut state = MachineState::new(0);
        let a = state.allocate(4, u64::MAX).unwrap();
        let b = state.allocate(4, u64::MAX).unwrap();
        assert!(b >= a + 4 + HEAP_GUARD);
    }

    #[test]
    fn allocation_size_cap() {
        let mut state = MachineState::new(0);
        assert!(matches!(
            state.allocate(1 << 40, 1 << 30),
            Err(VmError::AllocationTooLarge { .. })
        ));
    }

    #[test]
    fn overflow_flags_track_addresses() {
        let mut state = MachineState::new(16);
        state.set_overflowed(GLOBAL_BASE, Width::W32, true);
        assert!(state.is_overflowed(GLOBAL_BASE + 2, Width::W8));
        assert!(!state.is_overflowed(GLOBAL_BASE + 4, Width::W8));
        state.set_overflowed(GLOBAL_BASE, Width::W32, false);
        assert!(!state.is_overflowed(GLOBAL_BASE, Width::W32));
    }

    #[test]
    fn frames_allocate_and_release_stack_space() {
        let mut state = MachineState::new(0);
        let base1 = {
            let f = state.push_frame(0, 32, 0).unwrap();
            f.frame_base
        };
        let base2 = {
            let f = state.push_frame(1, 16, 5).unwrap();
            f.frame_base
        };
        assert_eq!(base2, base1 + 32);
        state.pop_frame();
        let base3 = state.push_frame(2, 8, 0).unwrap().frame_base;
        assert_eq!(base3, base2);
    }

    #[test]
    fn snapshot_captures_shadow_state() {
        let mut state = MachineState::new(16);
        state.push_frame(0, 8, 0).unwrap();
        state.store(GLOBAL_BASE, Width::W16, 7).unwrap();
        state.set_shadow(GLOBAL_BASE, Width::W16, Some(SymExpr::input_byte(3)));
        let snap = state.snapshot();
        assert_eq!(snap.load(GLOBAL_BASE, Width::W16), Some(7));
        assert!(snap.shadow_at(GLOBAL_BASE).is_some());
        assert!(snap.is_mapped(GLOBAL_BASE));
        assert!(!snap.is_mapped(HEAP_BASE + 100));
    }

    #[test]
    fn overlapping_store_invalidates_stale_wider_shadow() {
        use cp_symexpr::eval::eval;
        let mut state = MachineState::new(16);
        // A tainted 32-bit store, then an untainted byte store into its
        // second byte: the stale 4-byte expression must not survive, but the
        // three untouched bytes keep their taint.
        let input = [5u8];
        state.store(GLOBAL_BASE, Width::W32, 5).unwrap();
        state.set_shadow(
            GLOBAL_BASE,
            Width::W32,
            Some(SymExpr::input_byte(0).zext(Width::W32)),
        );
        state.store(GLOBAL_BASE + 1, Width::W8, 7).unwrap();
        state.set_shadow(GLOBAL_BASE + 1, Width::W8, None);
        // Memory now holds 0x0705; the reconstructed shadow must agree.
        let concrete = state.load(GLOBAL_BASE, Width::W32).unwrap();
        assert_eq!(concrete, 0x0705);
        let expr = state
            .load_shadow(GLOBAL_BASE, Width::W32)
            .expect("untouched bytes stay tainted");
        assert_eq!(eval(&expr, &input[..]), concrete);
    }

    #[test]
    fn narrow_load_extracts_byte_of_wider_shadow() {
        use cp_symexpr::eval::eval;
        let mut state = MachineState::new(16);
        // Store a tainted 16-bit value (b0 << 8 | b1 little-endian layout:
        // byte 0 holds b1's position).  Loading one byte must keep taint.
        let expr = SymExpr::input_byte(0)
            .zext(Width::W16)
            .binop(BinOp::Shl, SymExpr::constant(Width::W16, 8))
            .binop(BinOp::Or, SymExpr::input_byte(1).zext(Width::W16));
        state.store(GLOBAL_BASE, Width::W16, 0x1234).unwrap();
        state.set_shadow(GLOBAL_BASE, Width::W16, Some(expr));
        let input = [0x12u8, 0x34];
        let low = state
            .load_shadow(GLOBAL_BASE, Width::W8)
            .expect("low byte stays tainted");
        let high = state
            .load_shadow(GLOBAL_BASE + 1, Width::W8)
            .expect("high byte stays tainted");
        assert_eq!(eval(&low, &input[..]), 0x34);
        assert_eq!(eval(&high, &input[..]), 0x12);
    }

    #[test]
    fn wide_load_recomposes_tainted_and_concrete_bytes() {
        use cp_symexpr::eval::eval;
        use cp_symexpr::input_support;
        let mut state = MachineState::new(16);
        state.store(GLOBAL_BASE, Width::W16, 0x0007).unwrap();
        state.set_shadow(GLOBAL_BASE, Width::W8, Some(SymExpr::input_byte(5)));
        let expr = state
            .load_shadow(GLOBAL_BASE, Width::W16)
            .expect("one tainted byte taints the word");
        // Byte 0 is symbolic, byte 1 is the concrete 0x00 from memory.
        let input = [0u8, 0, 0, 0, 0, 0x42];
        assert_eq!(eval(&expr, &input[..]), 0x42);
        assert_eq!(
            input_support(&expr).into_iter().collect::<Vec<_>>(),
            vec![5]
        );
    }
}

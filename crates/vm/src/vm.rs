//! The fetch/decode/execute core of the instrumented VM.
//!
//! Execution mirrors the observation model of the paper's Valgrind-based
//! instrumentation (Section 3.2): every value on the operand stack carries an
//! optional symbolic shadow recording how it was computed from input bytes,
//! stores propagate that shadow into memory, and conditional branches report
//! both the direction taken and the symbolic condition to the [`Observer`].
//!
//! The VM also implements the paper's three error detectors:
//!
//! * **out-of-bounds heap access** — every load/store is checked against the
//!   live allocation list (guard gaps between allocations make small overruns
//!   land in unmapped space),
//! * **divide-by-zero** — trapped at the faulting instruction, and
//! * **integer overflow flowing into an allocation size** — arithmetic that
//!   wraps sets a sticky flag on the result value; `malloc` traps when its
//!   size argument carries the flag (the property DIODE targets).

use crate::error::VmError;
use crate::observer::{BranchEvent, NullObserver, Observer, StmtEndEvent};
use crate::state::{MachineState, Value};
use cp_bytecode::{CompiledProgram, Instr, Intrinsic};
use cp_symexpr::{eval::eval_binop, BinOp, CastKind, ExprBuild, ExprRef, SymExpr, UnOp, Width};

/// Resource limits and detector configuration for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Maximum number of instructions to execute before trapping with
    /// [`VmError::StepLimitExceeded`].
    pub max_steps: u64,
    /// Maximum call depth before trapping with
    /// [`VmError::CallDepthExceeded`].
    pub max_call_depth: usize,
    /// Maximum size of a single heap allocation; larger requests trap with
    /// [`VmError::AllocationTooLarge`].
    pub max_alloc: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_steps: 1_000_000,
            max_call_depth: 256,
            max_alloc: 1 << 30,
        }
    }
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Termination {
    /// `main` returned normally with this value (0 for void `main`).
    Returned(u64),
    /// The program executed an `exit` statement with this status.
    Exited(u64),
    /// Execution trapped on a detected error.
    Error(VmError),
}

impl Termination {
    /// The trapped error, if the run ended on one.
    pub fn error(&self) -> Option<&VmError> {
        match self {
            Termination::Error(e) => Some(e),
            _ => None,
        }
    }

    /// Whether the run ended on one of the paper's three application error
    /// classes (as opposed to finishing or hitting a VM resource limit).
    pub fn is_application_error(&self) -> bool {
        self.error().is_some_and(VmError::is_application_error)
    }
}

/// The outcome of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// How the run ended.
    pub termination: Termination,
    /// Values passed to the `output` intrinsic, in order.
    pub outputs: Vec<u64>,
    /// Number of instructions executed.
    pub steps: u64,
}

/// Runs `program` on `input` with no instrumentation.
pub fn run(program: &CompiledProgram, input: &[u8], config: &RunConfig) -> RunResult {
    run_with_observer(program, input, config, &mut NullObserver)
}

/// Runs `program` on `input`, dispatching execution events to `observer`.
pub fn run_with_observer(
    program: &CompiledProgram,
    input: &[u8],
    config: &RunConfig,
    observer: &mut dyn Observer,
) -> RunResult {
    let mut vm = Vm::new(program, input, *config);
    vm.run(observer)
}

/// What a single executed instruction asked the driver loop to do.
enum Control {
    /// Fall through to the next instruction.
    Next,
    /// Jump to an instruction index within the current function.
    Goto(usize),
    /// Control already updated (call/return adjusted function and pc).
    Transferred,
    /// The program terminated.
    Done(Termination),
}

/// An instrumented virtual machine executing one program on one input.
///
/// [`run`] / [`run_with_observer`] cover the common case; the struct is public
/// so that analyses needing finer control (single-stepping, mid-run snapshots)
/// can drive execution themselves via [`Vm::step`].
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p CompiledProgram,
    input: &'p [u8],
    config: RunConfig,
    state: MachineState,
    function: usize,
    pc: usize,
    termination: Option<Termination>,
}

impl<'p> Vm<'p> {
    /// Creates a VM with globals initialised and a frame pushed for `main`.
    ///
    /// # Panics
    ///
    /// Panics if the program's `main` index is out of range (malformed
    /// programs cannot be produced by the `cp-bytecode` compiler).
    pub fn new(program: &'p CompiledProgram, input: &'p [u8], config: RunConfig) -> Self {
        let mut state = MachineState::new(program.globals_size);
        for &(offset, width, value) in &program.global_inits {
            state
                .store(crate::GLOBAL_BASE + offset as u64, width, value)
                .expect("global initialiser inside the global segment");
        }
        let main = &program.functions[program.main];
        state
            .push_frame(program.main, main.frame_size, 0)
            .expect("fresh stack cannot overflow on the first frame");
        Vm {
            program,
            input,
            config,
            state,
            function: program.main,
            pc: 0,
            termination: None,
        }
    }

    /// The machine state (memory, shadow, frames) at the current point.
    pub fn state(&self) -> &MachineState {
        &self.state
    }

    /// The termination value once the run has ended.
    pub fn termination(&self) -> Option<&Termination> {
        self.termination.as_ref()
    }

    /// Runs to completion, dispatching events to `observer`.
    pub fn run(&mut self, observer: &mut dyn Observer) -> RunResult {
        let invocation = self.state.current_frame().invocation;
        observer.on_call(self.function, invocation, None);
        while self.termination.is_none() {
            self.step(observer);
        }
        RunResult {
            termination: self.termination.clone().expect("loop exited on Some"),
            outputs: self.state.outputs.clone(),
            steps: self.state.steps,
        }
    }

    /// Executes one instruction.  Returns the termination value once the run
    /// has ended (and on every later call).
    pub fn step(&mut self, observer: &mut dyn Observer) -> Option<Termination> {
        if self.termination.is_some() {
            return self.termination.clone();
        }
        self.state.steps += 1;
        if self.state.steps > self.config.max_steps {
            self.termination = Some(Termination::Error(VmError::StepLimitExceeded));
            return self.termination.clone();
        }
        match self.execute_current(observer) {
            Ok(Control::Next) => self.pc += 1,
            Ok(Control::Goto(target)) => self.pc = target,
            Ok(Control::Transferred) => {}
            Ok(Control::Done(t)) => self.termination = Some(t),
            Err(e) => self.termination = Some(Termination::Error(e)),
        }
        self.termination.clone()
    }

    fn execute_current(&mut self, observer: &mut dyn Observer) -> Result<Control, VmError> {
        let code = &self.program.functions[self.function].code;
        let instr = code.get(self.pc).ok_or_else(|| {
            VmError::InvalidBytecode(format!(
                "pc {} past the end of function {}",
                self.pc, self.function
            ))
        })?;
        match instr.clone() {
            Instr::PushConst { width, value } => {
                self.push(Value::new(width, value), None);
                Ok(Control::Next)
            }
            Instr::FrameAddr { offset } => {
                let base = self.state.current_frame().frame_base;
                self.push(Value::new(Width::W64, base + offset as u64), None);
                Ok(Control::Next)
            }
            Instr::GlobalAddr { offset } => {
                let addr = crate::GLOBAL_BASE + offset as u64;
                self.push(Value::new(Width::W64, addr), None);
                Ok(Control::Next)
            }
            Instr::Load { width } => {
                let (addr, _) = self.pop()?;
                let raw = self.state.load(addr.raw, width)?;
                let shadow = self.state.load_shadow(addr.raw, width);
                let overflowed = self.state.is_overflowed(addr.raw, width);
                self.push(Value::with_overflow(width, raw, overflowed), shadow);
                Ok(Control::Next)
            }
            Instr::Store { width } => {
                let (value, shadow) = self.pop()?;
                let (addr, _) = self.pop()?;
                self.state.store(addr.raw, width, value.raw)?;
                self.state
                    .set_shadow(addr.raw, width, adjust_width(shadow, width));
                self.state.set_overflowed(addr.raw, width, value.overflowed);
                Ok(Control::Next)
            }
            Instr::Binary { op, width } => {
                self.exec_binary(op, width)?;
                Ok(Control::Next)
            }
            Instr::Unary { op, width } => {
                self.exec_unary(op, width)?;
                Ok(Control::Next)
            }
            Instr::Cast { kind, from, to } => {
                self.exec_cast(kind, from, to)?;
                Ok(Control::Next)
            }
            Instr::Jump { target } => Ok(Control::Goto(target)),
            Instr::JumpIfZero { target } => {
                let (condition, shadow) = self.pop()?;
                let taken = condition.is_zero();
                let event = BranchEvent {
                    function: self.function,
                    pc: self.pc,
                    invocation: self.state.current_frame().invocation,
                    taken,
                    condition,
                    expr: shadow,
                };
                observer.on_branch(&event, &self.state);
                if taken {
                    Ok(Control::Goto(target))
                } else {
                    Ok(Control::Next)
                }
            }
            Instr::Call { function } => {
                self.exec_call(function, observer)?;
                Ok(Control::Transferred)
            }
            Instr::CallIntrinsic { intrinsic } => {
                self.exec_intrinsic(intrinsic, observer)?;
                Ok(Control::Next)
            }
            Instr::Return { has_value } => self.exec_return(has_value, observer),
            Instr::Exit => {
                let (status, _) = self.pop()?;
                Ok(Control::Done(Termination::Exited(status.raw)))
            }
            Instr::Pop => {
                self.pop()?;
                Ok(Control::Next)
            }
            Instr::StmtEnd { stmt } => {
                let event = StmtEndEvent {
                    function: self.function,
                    invocation: self.state.current_frame().invocation,
                    stmt,
                };
                observer.on_stmt_end(&event, &self.state);
                Ok(Control::Next)
            }
        }
    }

    fn exec_binary(&mut self, op: BinOp, width: Width) -> Result<(), VmError> {
        let (rhs, rhs_shadow) = self.pop()?;
        let (lhs, lhs_shadow) = self.pop()?;
        let a = width.truncate(lhs.raw);
        let b = width.truncate(rhs.raw);
        if matches!(op, BinOp::DivU | BinOp::DivS | BinOp::RemU | BinOp::RemS) && b == 0 {
            return Err(VmError::DivideByZero {
                function: self.function,
                pc: self.pc,
            });
        }
        let raw = eval_binop(op, width, a, b);
        // Sticky overflow: a freshly wrapped result, or an operand that was
        // already poisoned, poisons the result.  Comparisons start clean —
        // their 0/1 decision is not a size that could flow into an allocation.
        let result = if op.is_comparison() {
            Value::new(Width::W8, raw)
        } else {
            let wrapped = arith_wrapped(op, width, a, b);
            Value::with_overflow(width, raw, wrapped || lhs.overflowed || rhs.overflowed)
        };
        let shadow = match (lhs_shadow, rhs_shadow) {
            (None, None) => None,
            (ls, rs) => {
                let le = ls.unwrap_or_else(|| SymExpr::constant(width, a));
                let re = rs.unwrap_or_else(|| SymExpr::constant(width, b));
                Some(le.binop_w(op, result.width, re))
            }
        };
        self.push(result, shadow);
        Ok(())
    }

    fn exec_unary(&mut self, op: UnOp, width: Width) -> Result<(), VmError> {
        let (value, shadow) = self.pop()?;
        let a = width.truncate(value.raw);
        let (raw, result_width) = match op {
            UnOp::Neg => (width.truncate(a.wrapping_neg()), width),
            UnOp::Not => (width.truncate(!a), width),
            UnOp::LogicalNot => ((a == 0) as u64, Width::W8),
        };
        let result = Value::with_overflow(result_width, raw, value.overflowed);
        self.push(result, shadow.map(|e| e.unop(op)));
        Ok(())
    }

    fn exec_cast(&mut self, kind: CastKind, from: Width, to: Width) -> Result<(), VmError> {
        let (value, shadow) = self.pop()?;
        let a = from.truncate(value.raw);
        let raw = match kind {
            CastKind::ZeroExt => a,
            CastKind::SignExt => to.truncate(from.sign_extend(a)),
            CastKind::Truncate => to.truncate(a),
        };
        let shadow = shadow.map(|e| match kind {
            CastKind::ZeroExt => e.zext(to),
            CastKind::SignExt => e.sext(to),
            CastKind::Truncate => e.truncate(to),
        });
        self.push(Value::with_overflow(to, raw, value.overflowed), shadow);
        Ok(())
    }

    fn exec_call(&mut self, function: usize, observer: &mut dyn Observer) -> Result<(), VmError> {
        let callee =
            self.program.functions.get(function).ok_or_else(|| {
                VmError::InvalidBytecode(format!("bad function index {function}"))
            })?;
        if self.state.frames.len() >= self.config.max_call_depth {
            return Err(VmError::CallDepthExceeded);
        }
        // Arguments were pushed left to right, so the rightmost is on top.
        let mut args = Vec::with_capacity(callee.params.len());
        for _ in 0..callee.params.len() {
            args.push(self.pop()?);
        }
        args.reverse();
        let caller = self.function;
        let return_pc = self.pc + 1;
        let frame = self
            .state
            .push_frame(function, callee.frame_size, return_pc)?;
        let frame_base = frame.frame_base;
        let invocation = frame.invocation;
        for (slot, (value, shadow)) in callee.params.iter().zip(args) {
            let addr = frame_base + slot.offset as u64;
            self.state.store(addr, slot.width, value.raw)?;
            self.state
                .set_shadow(addr, slot.width, adjust_width(shadow, slot.width));
            self.state
                .set_overflowed(addr, slot.width, value.overflowed);
        }
        observer.on_call(function, invocation, Some(caller));
        self.function = function;
        self.pc = 0;
        Ok(())
    }

    fn exec_return(
        &mut self,
        has_value: bool,
        observer: &mut dyn Observer,
    ) -> Result<Control, VmError> {
        let ret = if has_value { Some(self.pop()?) } else { None };
        let frame = self
            .state
            .pop_frame()
            .ok_or_else(|| VmError::InvalidBytecode("return with no active frame".into()))?;
        if self.state.operands.len() != frame.operand_base {
            return Err(VmError::InvalidBytecode(format!(
                "operand stack imbalance on return from function {} ({} vs {})",
                frame.function,
                self.state.operands.len(),
                frame.operand_base
            )));
        }
        observer.on_return(frame.function, frame.invocation);
        if self.state.frames.is_empty() {
            let value = ret.map(|(v, _)| v.raw).unwrap_or(0);
            return Ok(Control::Done(Termination::Returned(value)));
        }
        self.function = self.state.current_frame().function;
        self.pc = frame.return_pc;
        if let Some((value, shadow)) = ret {
            self.push(value, shadow);
        }
        Ok(Control::Transferred)
    }

    fn exec_intrinsic(
        &mut self,
        intrinsic: Intrinsic,
        observer: &mut dyn Observer,
    ) -> Result<(), VmError> {
        match intrinsic {
            Intrinsic::InputByte => {
                let (offset, _) = self.pop()?;
                let byte = self.input.get(offset.raw as usize).copied().unwrap_or(0);
                let invocation = self.state.current_frame().invocation;
                observer.on_input_read(offset.raw, self.function, invocation);
                // This is the taint source: the loaded byte is shadowed by an
                // `InputByte` leaf regardless of its concrete value.
                self.push(
                    Value::new(Width::W8, byte as u64),
                    Some(SymExpr::input_byte(offset.raw as usize)),
                );
                Ok(())
            }
            Intrinsic::InputLen => {
                self.push(Value::new(Width::W64, self.input.len() as u64), None);
                Ok(())
            }
            Intrinsic::Malloc => {
                let (size, size_shadow) = self.pop()?;
                // The DIODE detector: an arithmetic overflow reaching an
                // allocation size is an error even when the wrapped size is
                // small enough for the allocation itself to succeed.
                if size.overflowed {
                    return Err(VmError::OverflowIntoAllocation {
                        requested: size.raw,
                    });
                }
                let base = self.state.allocate(size.raw, self.config.max_alloc)?;
                observer.on_alloc(base, &size, size_shadow.as_ref(), &self.state);
                self.push(Value::new(Width::W64, base), None);
                Ok(())
            }
            Intrinsic::Output => {
                let (value, _) = self.pop()?;
                self.state.outputs.push(value.raw);
                Ok(())
            }
        }
    }

    fn push(&mut self, value: Value, shadow: Option<ExprRef>) {
        // Constant-valued shadows carry no taint and only bloat downstream
        // expressions; drop them eagerly.
        let shadow = shadow.filter(|e| e.is_tainted());
        self.state.operands.push(value);
        self.state.operand_shadow.push(shadow);
    }

    fn pop(&mut self) -> Result<(Value, Option<ExprRef>), VmError> {
        let value = self
            .state
            .operands
            .pop()
            .ok_or_else(|| VmError::InvalidBytecode("operand stack underflow".into()))?;
        let shadow = self
            .state
            .operand_shadow
            .pop()
            .ok_or_else(|| VmError::InvalidBytecode("shadow stack underflow".into()))?;
        Ok((value, shadow))
    }
}

/// Whether applying `op` to `a` and `b` at `width` wraps.
///
/// Only the operators whose wrapped results the paper's evaluation cares
/// about are flagged — additive and multiplicative arithmetic, the kind that
/// produces too-small allocation sizes.
fn arith_wrapped(op: BinOp, width: Width, a: u64, b: u64) -> bool {
    let mask = width.mask() as u128;
    match op {
        BinOp::Add => (a as u128) + (b as u128) > mask,
        BinOp::Sub => b > a,
        BinOp::Mul => (a as u128) * (b as u128) > mask,
        _ => false,
    }
}

/// Re-widens a shadow expression so its width matches the width of the slot
/// it is stored into.
///
/// The widths only ever disagree for 0/1-valued results (comparisons and
/// logical negation produce 8-bit values that the front end types as `u32`),
/// so zero extension — or truncation in the opposite direction — preserves
/// the value.
fn adjust_width(shadow: Option<ExprRef>, width: Width) -> Option<ExprRef> {
    shadow.map(|e| {
        if e.width() == width {
            e
        } else if e.width() < width {
            e.zext(width)
        } else {
            e.truncate(width)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_bytecode::compile;
    use cp_lang::frontend;
    use cp_symexpr::input_support;

    fn program(source: &str) -> CompiledProgram {
        compile(&frontend(source).unwrap()).unwrap()
    }

    fn run_source(source: &str, input: &[u8]) -> RunResult {
        run(&program(source), input, &RunConfig::default())
    }

    #[derive(Default)]
    struct BranchLog {
        events: Vec<(bool, Option<ExprRef>)>,
    }

    impl Observer for BranchLog {
        fn on_branch(&mut self, event: &BranchEvent, _state: &MachineState) {
            self.events.push((event.taken, event.expr));
        }
    }

    #[test]
    fn function_calls_pass_arguments_and_return_values() {
        let result = run_source(
            r#"
            fn add(a: u32, b: u32) -> u32 { return a + b; }
            fn main() -> u32 { return add(40, add(1, 1)); }
            "#,
            &[],
        );
        assert_eq!(result.termination, Termination::Returned(42));
    }

    #[test]
    fn while_loop_sums_input_bytes() {
        let result = run_source(
            r#"
            fn main() -> u32 {
                var i: u64 = 0;
                var sum: u32 = 0;
                while (i < input_len()) {
                    sum = sum + (input_byte(i) as u32);
                    i = i + 1;
                }
                return sum;
            }
            "#,
            &[1, 2, 3, 4],
        );
        assert_eq!(result.termination, Termination::Returned(10));
    }

    #[test]
    fn exit_terminates_with_status() {
        let result = run_source(
            r#"
            fn main() -> u32 {
                exit(3);
                return 0;
            }
            "#,
            &[],
        );
        assert_eq!(result.termination, Termination::Exited(3));
    }

    #[test]
    fn divide_by_zero_is_trapped() {
        let result = run_source(
            r#"
            fn main() -> u32 {
                var d: u32 = input_byte(0) as u32;
                return 100 / d;
            }
            "#,
            &[0],
        );
        assert!(matches!(
            result.termination,
            Termination::Error(VmError::DivideByZero { .. })
        ));
    }

    #[test]
    fn heap_overrun_is_trapped() {
        let result = run_source(
            r#"
            fn main() -> u32 {
                var p: ptr<u8> = malloc(4) as ptr<u8>;
                p[input_byte(0) as u64] = 1;
                return 0;
            }
            "#,
            &[9],
        );
        assert!(matches!(
            result.termination,
            Termination::Error(VmError::OutOfBounds { write: true, .. })
        ));
    }

    #[test]
    fn overflowed_size_reaching_malloc_is_trapped() {
        // 0xFFFF * 0x11117 wraps in u32; DIODE flags the allocation.
        let result = run_source(
            r#"
            fn main() -> u32 {
                var n: u32 = (input_byte(0) as u32) << 8;
                var size: u32 = n * 70000;
                var p: u64 = malloc(size as u64);
                return 0;
            }
            "#,
            &[0xFF],
        );
        assert!(matches!(
            result.termination,
            Termination::Error(VmError::OverflowIntoAllocation { .. })
        ));
    }

    #[test]
    fn benign_allocation_is_not_flagged() {
        let result = run_source(
            r#"
            fn main() -> u32 {
                var n: u32 = (input_byte(0) as u32) * 4;
                var p: u64 = malloc(n as u64);
                return n;
            }
            "#,
            &[8],
        );
        assert_eq!(result.termination, Termination::Returned(32));
    }

    #[test]
    fn step_limit_is_enforced() {
        let result = run(
            &program("fn main() -> u32 { while (1) { } return 0; }"),
            &[],
            &RunConfig {
                max_steps: 1000,
                ..RunConfig::default()
            },
        );
        assert_eq!(
            result.termination,
            Termination::Error(VmError::StepLimitExceeded)
        );
    }

    #[test]
    fn runaway_recursion_hits_call_depth_limit() {
        let result = run_source(
            r#"
            fn f(n: u32) -> u32 { return f(n + 1); }
            fn main() -> u32 { return f(0); }
            "#,
            &[],
        );
        assert!(matches!(
            result.termination,
            Termination::Error(VmError::CallDepthExceeded | VmError::StackOverflow)
        ));
    }

    #[test]
    fn branch_condition_carries_symbolic_expression() {
        let mut log = BranchLog::default();
        let result = run_with_observer(
            &program(
                r#"
                fn main() -> u32 {
                    var width: u16 = ((input_byte(0) as u16) << 8) | (input_byte(1) as u16);
                    if (width > 100) { return 1; }
                    return 0;
                }
                "#,
            ),
            &[0x01, 0x00],
            &RunConfig::default(),
            &mut log,
        );
        assert_eq!(result.termination, Termination::Returned(1));
        assert_eq!(log.events.len(), 1);
        let (taken, expr) = &log.events[0];
        // 0x0100 > 100, so the condition is non-zero and the branch falls
        // through.
        assert!(!taken);
        let expr = expr.as_ref().expect("condition depends on the input");
        assert_eq!(
            input_support(expr).into_iter().collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn taint_propagates_through_memory_and_calls() {
        let mut log = BranchLog::default();
        run_with_observer(
            &program(
                r#"
                fn check(n: u32) -> u32 {
                    if (n == 7) { return 1; }
                    return 0;
                }
                fn main() -> u32 {
                    var b: u32 = input_byte(2) as u32;
                    return check(b);
                }
                "#,
            ),
            &[0, 0, 7],
            &RunConfig::default(),
            &mut log,
        );
        let expr = log.events[0].1.as_ref().expect("argument is tainted");
        assert_eq!(input_support(expr).into_iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn stripped_programs_run_identically() {
        let program = program(
            r#"
            fn main() -> u32 {
                var w: u16 = ((input_byte(0) as u16) << 8) | (input_byte(1) as u16);
                output(w as u64);
                return w as u32;
            }
            "#,
        );
        let stripped = program.strip();
        let full = run(&program, &[0xAB, 0xCD], &RunConfig::default());
        let bare = run(&stripped, &[0xAB, 0xCD], &RunConfig::default());
        assert_eq!(full.termination, bare.termination);
        assert_eq!(full.outputs, bare.outputs);
    }

    #[test]
    fn globals_are_initialised_before_main() {
        let result = run_source(
            r#"
            global threshold: u32 = 29;
            fn main() -> u32 { return threshold + 13; }
            "#,
            &[],
        );
        assert_eq!(result.termination, Termination::Returned(42));
    }
}

//! Demonstrates the full donor→recipient transfer pipeline on a corpus
//! scenario: record the stripped donor on the error input, fold its guard
//! check over the format descriptor, and translate it into the recipient's
//! namespace with solver-proved field bindings.
//!
//! ```text
//! cargo run --example check_transfer
//! ```

use code_phage::{PipelineError, Session};
use cp_symexpr::eval::eval;

fn main() -> Result<(), PipelineError> {
    let scenario = cp_corpus::IMAGE_ALLOC;
    let format = scenario.format();

    // Donor analysis works on the stripped binary: no symbols, no debug info.
    let donor = Session::builder()
        .source(scenario.donor_source)
        .stripped()
        .input(scenario.error_input)
        .record()?;
    println!("donor on error input -> {:?}", donor.termination);
    let check = &donor.checks()[0];
    println!("donor check:  {}", check.condition());
    println!("folded check: {}", format.fold(&check.condition()));

    // The recipient faults on the same input...
    let mut recipient = Session::builder().source(scenario.source).build()?;
    let crash = recipient.record_with_input(scenario.error_input);
    println!(
        "recipient on error input -> {}",
        crash
            .last_error()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "ran cleanly".into())
    );

    // ...so translate the donor's guard into the recipient's namespace,
    // using the expressions its benign run computed.
    let benign = recipient.record_with_input(scenario.benign_input);
    let translation = benign
        .translate_check(check, &format)
        .expect("corpus scenario translates");
    for binding in &translation.bindings {
        println!(
            "  {} ({} bits) := {}   [{}]",
            binding.path, binding.width, binding.replacement, binding.source
        );
    }
    println!("translated condition: {}", translation.condition);
    println!(
        "stats: {} pairs, {} pruned by disjoint support, {} solver calls ({} proved)",
        translation.stats.pairs,
        translation.stats.pruned_disjoint,
        translation.stats.solver_calls,
        translation.stats.proved
    );
    println!(
        "error input flagged: {}, benign accepted: {}",
        eval(&translation.condition, scenario.error_input) != 0,
        eval(&translation.condition, scenario.benign_input) == 0
    );
    Ok(())
}

//! Demonstrates the donor-side analysis through the public pipeline API:
//! record an instrumented run, inspect the detected error, and print the
//! candidate checks in the paper's notation.
//!
//! ```text
//! cargo run --example donor_analysis
//! ```

use code_phage::{PipelineError, Session};

fn main() -> Result<(), PipelineError> {
    let source = r#"
        fn read_u16(off: u64) -> u16 {
            return ((input_byte(off) as u16) << 8) | (input_byte(off + 1) as u16);
        }
        fn main() -> u32 {
            var width: u32 = read_u16(0) as u32;
            var height: u32 = read_u16(2) as u32;
            if (width == 0) { exit(1); }
            var size: u32 = width * height * 4;
            var pixels: u64 = malloc(size as u64);
            output(size as u64);
            return 0;
        }
    "#;

    // A malicious header: 0xFFFF x 0xFFFF overflows the 32-bit size.
    let mut session = Session::builder().source(source).build()?;
    let trace = session.record_with_input(&[0xFF, 0xFF, 0xFF, 0xFF]);

    match trace.last_error() {
        Some(error) => println!("error input -> {error}"),
        None => println!("error input -> ran cleanly (unexpected)"),
    }

    println!("branches influenced by header bytes 0-3:");
    for branch in trace.branches_influenced_by(&[0, 1, 2, 3]) {
        println!(
            "  fn {} pc {} taken={}",
            branch.function, branch.pc, branch.taken
        );
    }

    println!("candidate checks (application-independent form):");
    for check in trace.checks() {
        println!(
            "  {} ({} ops -> {} ops)",
            check.condition(),
            check.raw_ops(),
            check.simplified_ops()
        );
    }

    // The benign input parses cleanly through the same session.
    let benign = session.record_with_input(&[0x00, 0x10, 0x00, 0x10]);
    println!(
        "benign input -> {:?}, outputs {:?}",
        benign.termination, benign.outputs
    );
    Ok(())
}

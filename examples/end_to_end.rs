//! One scenario end to end: record the donor, discover its check, and
//! transfer it into the recipient as a *validated* source patch —
//! translate → insert → lower → recompile → revalidate.
//!
//! ```text
//! cargo run --example end_to_end
//! ```

use code_phage::{Session, TransferSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = cp_corpus::IMAGE_ALLOC;
    let format = scenario.format();

    // Donor analysis on the stripped binary: record the error input; the
    // donor's guard fires and it exits cleanly where the recipient faults.
    let donor = Session::builder()
        .source(scenario.donor_source)
        .stripped()
        .input(scenario.error_input)
        .record()?;
    println!("donor on error input  -> {:?}", donor.termination);

    // The unpatched recipient faults on the same input.
    let mut recipient = Session::builder().source(scenario.source).build()?;
    let crash = recipient.record_with_input(scenario.error_input);
    println!(
        "recipient             -> {}",
        crash
            .last_error()
            .map(|e| e.to_string())
            .unwrap_or_default()
    );

    // Transfer the first donor check that produces a validated patch.
    let spec = TransferSpec::new(scenario.error_input, scenario.benign_corpus)
        .with_action(scenario.patch_action);
    let outcome = donor
        .checks()
        .iter()
        .find_map(|check| recipient.transfer(check, &format, &spec).ok())
        .expect("a donor check transfers");

    println!("\ninsertion point       -> {}", outcome.site);
    for binding in &outcome.bindings {
        println!(
            "binding               -> {} := var {}",
            binding.path, binding.var_name
        );
    }
    println!("patch                 -> {}", outcome.patch.render());
    println!("verdict               -> {}", outcome.report.verdict);
    let after = outcome.report.error_after.as_ref().expect("validated");
    println!("patched on error      -> {:?}", after.termination);
    println!(
        "benign corpus         -> {} inputs byte-identical",
        outcome.report.benign.len()
    );
    Ok(())
}

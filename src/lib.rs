//! # code-phage
//!
//! Umbrella crate for the Code Phage reproduction
//! (Sidiroglou-Douskos et al., *Automatic Error Elimination by Horizontal
//! Code Transfer across Multiple Applications*, PLDI 2015).
//!
//! The pipeline entry point lives in [`cp_core`]; this crate re-exports it so
//! downstream users depend on one name:
//!
//! ```
//! use code_phage::Session;
//!
//! let trace = Session::builder()
//!     .source("fn main() -> u32 { return 6 * 7; }")
//!     .record()?;
//! assert!(trace.last_error().is_none());
//! # Ok::<(), code_phage::PipelineError>(())
//! ```
//!
//! See the repository `README.md` for the crate map.

pub use cp_core::*;

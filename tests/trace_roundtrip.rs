//! The trace JSONL that `cp-obs` emits must be readable by the same
//! dependency-free JSON parser (`cp_bench::json`) that reads `BENCH.json` —
//! the two crates share a dialect by construction, and this test is the
//! contract: every line a real traced sweep writes parses back with the
//! fields its type promises.

use cp_bench::json::{parse, Value};
use cp_obs::Collector;

fn str_field<'v>(line: &'v Value, key: &str) -> &'v str {
    match line.get(key) {
        Some(Value::String(s)) => s,
        other => panic!("field {key} is {other:?} in {line:?}"),
    }
}

fn num_field(line: &Value, key: &str) -> f64 {
    line.get(key)
        .and_then(Value::as_number)
        .unwrap_or_else(|| panic!("field {key} missing in {line:?}"))
}

#[test]
fn a_traced_scenario_exports_jsonl_the_bench_parser_reads_back() {
    let collector = Collector::new();
    let scenario = cp_corpus::scenarios()[0];
    {
        let _sub = collector.subscribe();
        let outcome = cp_corpus::pipeline::run_scenario(&scenario);
        assert!(outcome.validated(), "corpus scenario regressed");
    }
    let jsonl = collector.take().to_jsonl_with_metrics();

    let mut spans = 0usize;
    let mut events = 0usize;
    let mut metrics = 0usize;
    for line in jsonl.lines() {
        let value = parse(line)
            .unwrap_or_else(|| panic!("cp_bench::json cannot parse the trace line: {line}"));
        match str_field(&value, "type") {
            "span" => {
                spans += 1;
                assert!(!str_field(&value, "name").is_empty());
                let (start, end) = (num_field(&value, "start_ns"), num_field(&value, "end_ns"));
                assert!(end >= start, "span times inverted: {line}");
                assert_eq!(
                    str_field(&value, "scenario"),
                    scenario.name,
                    "span attributed elsewhere: {line}"
                );
            }
            "event" => {
                events += 1;
                assert!(!str_field(&value, "kind").is_empty());
                num_field(&value, "seq");
            }
            "metric" => {
                metrics += 1;
                assert!(!str_field(&value, "name").is_empty());
                match str_field(&value, "kind") {
                    "counter" | "gauge" => {
                        num_field(&value, "value");
                    }
                    "histogram" => {
                        num_field(&value, "count");
                        num_field(&value, "p50");
                    }
                    other => panic!("unknown metric kind {other}: {line}"),
                }
            }
            other => panic!("unknown line type {other}: {line}"),
        }
    }

    assert!(spans >= 4, "a full scenario traces all its stages: {jsonl}");
    assert!(events >= 1, "solver escalation events expected: {jsonl}");
    assert!(metrics >= 3, "registry snapshot expected: {jsonl}");
}

#[test]
fn escaped_strings_survive_the_round_trip() {
    let line = cp_obs::export::JsonLine::new()
        .str("type", "probe")
        .str("payload", "quote \" slash \\ newline \n tab \t bell \u{7}")
        .num("n", 42)
        .finish();
    let value = parse(&line).expect("escaped line parses");
    assert_eq!(
        str_field(&value, "payload"),
        "quote \" slash \\ newline \n tab \t bell \u{7}"
    );
    assert_eq!(num_field(&value, "n"), 42.0);
}
